//! Deterministic fan-out of independent simulation episodes onto worker
//! threads.
//!
//! The discrete-event core is strictly single-threaded *within* an
//! episode — the calendar [`crate::queue::EventQueue`] and run-coalesced
//! [`crate::schedule::SlotResource`] derive their determinism from a total
//! order on events. Between episodes, however, there is no shared state at
//! all: every drain/recovery episode owns its hierarchy, metadata engine
//! and bank set. [`EpisodeShards`] exploits exactly that boundary: it runs
//! a batch of independent episode closures on up to `threads` workers and
//! returns the results **in submission order**, so the merged output is
//! byte-identical to a serial `Vec::into_iter().map(..)` run no matter how
//! the scheduler interleaves the workers.
//!
//! Determinism argument: each closure is a pure function of its inputs
//! (episodes never share mutable state), workers pull work items off a
//! shared atomic cursor (so assignment order varies run to run), but each
//! result is written back into the slot indexed by its *submission*
//! position. The output vector therefore never depends on thread timing.
//!
//! ```
//! use horus_sim::shards::EpisodeShards;
//!
//! let shards = EpisodeShards::new(4);
//! let squares = shards.run((0u64..8).map(|i| move || i * i).collect());
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker pool that executes independent episodes and merges their
/// results deterministically (submission order).
///
/// `threads == 1` is the *reference configuration*: episodes execute
/// inline on the caller's thread with no synchronisation at all, which is
/// what the golden-trace corpus and `BENCH_smoke.json` baselines are
/// defined against. Any other thread count must produce bit-identical
/// output, and `tests/shard_properties.rs` plus the repo-root
/// `sim_threads_golden.rs` suite hold that line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeShards {
    threads: usize,
}

impl EpisodeShards {
    /// Creates a pool that uses up to `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the host's available parallelism (fallback 1).
    #[must_use]
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every episode and returns the results in submission order.
    ///
    /// With one worker (or one episode) this is a plain serial loop on the
    /// caller's thread. Otherwise episodes are pulled off a shared cursor
    /// by scoped worker threads; a panicking episode propagates the panic
    /// to the caller after the scope joins.
    #[must_use]
    pub fn run<T, F>(&self, episodes: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.threads.min(episodes.len());
        if workers <= 1 {
            return episodes.into_iter().map(|ep| ep()).collect();
        }

        // Hand each episode out exactly once via an atomic cursor; write
        // each result into the slot matching its submission index.
        let work: Vec<Mutex<Option<F>>> = episodes
            .into_iter()
            .map(|ep| Mutex::new(Some(ep)))
            .collect();
        let mut slots: Vec<Mutex<Option<T>>> = Vec::new();
        slots.resize_with(work.len(), || Mutex::new(None));
        let cursor = AtomicUsize::new(0);
        let (work_ref, slots_ref, cursor_ref) = (&work, &slots, &cursor);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= work_ref.len() {
                        break;
                    }
                    let episode = work_ref[i]
                        .lock()
                        .expect("episode handed out twice")
                        .take()
                        .expect("episode handed out twice");
                    let result = episode();
                    *slots_ref[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker scope joined with an unfilled slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch() {
        let shards = EpisodeShards::new(8);
        let out: Vec<u32> = shards.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let shards = EpisodeShards::new(1);
        let tid = std::thread::current().id();
        let out = shards.run(vec![move || std::thread::current().id() == tid]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(EpisodeShards::new(0).threads(), 1);
    }

    #[test]
    fn merge_order_is_submission_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let shards = EpisodeShards::new(threads);
            let episodes: Vec<_> = (0..33u64)
                .map(|i| {
                    move || {
                        // Skew the finish order: later submissions finish first.
                        if threads > 1 {
                            std::thread::sleep(std::time::Duration::from_micros((33 - i) * 20));
                        }
                        i.wrapping_mul(0x9e37_79b9)
                    }
                })
                .collect();
            let out = shards.run(episodes);
            let expect: Vec<u64> = (0..33u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn fewer_episodes_than_threads() {
        let shards = EpisodeShards::new(16);
        assert_eq!(shards.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(EpisodeShards::available().threads() >= 1);
    }
}
