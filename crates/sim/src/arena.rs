//! Recycling arenas for per-episode scratch buffers.
//!
//! Every drain episode materialises the same handful of transient vectors
//! (the dirty-block drain order, the dirty metadata lines, the per-push
//! issue log). Allocating them fresh per episode shows up directly in the
//! `alloc-profile` counting allocator once the crypto and event-dispatch
//! costs shrink. A [`ScratchArena`] keeps the backing `Vec`s alive between
//! episodes: `take()` hands out a cleared buffer with its old capacity,
//! `put()` returns it to the pool. After the first episode at a given
//! working-set size, steady-state episodes stop hitting the allocator for
//! these buffers entirely.
//!
//! The arena is deliberately *value-transparent*: a recycled buffer is
//! `clear()`ed on return, so its contents are indistinguishable from a
//! freshly allocated one — only the capacity (and thus the allocation
//! count) differs. That is what keeps golden traces and `Stats` JSON
//! byte-identical with and without recycling.
//!
//! ```
//! use horus_sim::arena::ScratchArena;
//!
//! let arena = ScratchArena::new();
//! let mut v = arena.take();
//! v.extend([1u32, 2, 3]);
//! arena.put(v);
//! let v2 = arena.take(); // same backing allocation, now empty
//! assert!(v2.is_empty() && v2.capacity() >= 3);
//! ```

use std::cell::RefCell;

/// A pool of recycled `Vec<T>` scratch buffers.
///
/// Single-threaded by design (interior mutability via [`RefCell`]): each
/// shard worker owns its own arenas through a `thread_local!`, so recycling
/// never introduces cross-episode ordering effects.
#[derive(Debug)]
pub struct ScratchArena<T> {
    pool: RefCell<Vec<Vec<T>>>,
}

impl<T> Default for ScratchArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ScratchArena<T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pool: RefCell::new(Vec::new()),
        }
    }

    /// Takes an empty buffer from the pool (or allocates a new empty one).
    ///
    /// The returned vector is always empty; a recycled buffer keeps its
    /// previous capacity, which is the entire point.
    #[must_use]
    pub fn take(&self) -> Vec<T> {
        self.pool.borrow_mut().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for the next episode, clearing it.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        self.pool.borrow_mut().push(buf);
    }

    /// Number of buffers currently parked in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_allocates_empty_vec() {
        let arena: ScratchArena<u64> = ScratchArena::new();
        let v = arena.take();
        assert!(v.is_empty());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn put_then_take_recycles_capacity() {
        let arena: ScratchArena<u64> = ScratchArena::new();
        let mut v = arena.take();
        v.extend(0..100);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        arena.put(v);
        assert_eq!(arena.pooled(), 1);
        let v2 = arena.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "must be the same backing allocation");
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn pool_holds_multiple_buffers() {
        let arena: ScratchArena<u8> = ScratchArena::new();
        arena.put(Vec::with_capacity(8));
        arena.put(Vec::with_capacity(16));
        assert_eq!(arena.pooled(), 2);
        let _a = arena.take();
        let _b = arena.take();
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn recycled_buffer_is_indistinguishable_in_contents() {
        let arena: ScratchArena<u32> = ScratchArena::new();
        let mut v = arena.take();
        v.extend([7, 8, 9]);
        arena.put(v);
        assert_eq!(arena.take(), Vec::<u32>::new());
    }
}
