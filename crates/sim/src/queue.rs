//! A deterministic discrete-event queue.
//!
//! Most of the drain-path timing is handled by chaining
//! [`Resource`](crate::resource::Resource) completions, but components
//! that need explicit future events (e.g. the memory controller's
//! write-pending queue draining in the background, or recovery prefetch)
//! use this queue. Events at the same timestamp pop in insertion order, so
//! simulations are fully deterministic.
//!
//! # Implementation
//!
//! The queue is a *calendar queue* (Brown, CACM 1988): pending events
//! hash into `N` circular day-buckets by `(time >> shift) % N`, each
//! bucket kept sorted by `(time, seq)`. Popping scans days forward from
//! the current time — amortized O(1) when the bucket width tracks the
//! average inter-event gap, which a rebuild re-derives whenever the
//! queue grows or shrinks past its calendar size. Simulated event
//! populations are heavily clustered in time (bank completions, drain
//! steps), which is exactly the distribution calendar queues excel at;
//! the prior `BinaryHeap` paid O(log n) plus poor locality per
//! operation.

use crate::clock::Cycles;
use std::collections::VecDeque;

/// Smallest calendar size; also the initial size.
const MIN_BUCKETS: usize = 16;
/// Largest calendar size — bounds rebuild and sparse-scan cost.
const MAX_BUCKETS: usize = 1 << 16;
/// Entries per bucket a rebuild aims for. Multi-entry buckets keep the
/// bucket count (and thus per-bucket allocations and scan length) an
/// order of magnitude below the population while inserts stay cheap:
/// a binary search plus a short move inside one small deque.
const TARGET_OCCUPANCY: usize = 8;

/// An event queue ordered by time, FIFO within a timestamp.
///
/// ```
/// use horus_sim::{Cycles, queue::EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), "b");
/// q.schedule(Cycles(5), "a");
/// q.schedule(Cycles(10), "c");
/// assert_eq!(q.pop(), Some((Cycles(5), "a")));
/// assert_eq!(q.pop(), Some((Cycles(10), "b")));
/// assert_eq!(q.pop(), Some((Cycles(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Power-of-two count of day buckets, each sorted by `(time, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// log2 of the bucket (day) width in cycles.
    shift: u32,
    len: usize,
    seq: u64,
    now: Cycles,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            shift: 0,
            len: 0,
            seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, time: Cycles) -> usize {
        ((time.0 >> self.shift) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current time — events cannot
    /// be scheduled in the past.
    pub fn schedule(&mut self, time: Cycles, event: E) {
        assert!(time >= self.now, "cannot schedule an event in the past");
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        let b = self.bucket_of(time);
        let bucket = &mut self.buckets[b];
        // Typical case: times arrive roughly in order, so the entry
        // belongs at the back. Monotonic `seq` means equal-time entries
        // appended after their peers stay in insertion order.
        if !bucket.back().is_some_and(|e| e.time > time) {
            bucket.push_back(entry);
        } else {
            let pos = bucket.partition_point(|e| e.time <= time);
            bucket.insert(pos, entry);
        }
        self.len += 1;
        if self.len > 2 * TARGET_OCCUPANCY * self.buckets.len() && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild();
        }
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let b = self.next_bucket()?;
        let entry = self.buckets[b]
            .pop_front()
            .expect("next_bucket points at a non-empty bucket");
        self.len -= 1;
        self.now = entry.time;
        if self.buckets.len() > MIN_BUCKETS && self.len < TARGET_OCCUPANCY * self.buckets.len() / 4
        {
            self.rebuild();
        }
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.next_bucket()
            .map(|b| self.buckets[b].front().expect("non-empty bucket").time)
    }

    /// The bucket holding the earliest pending `(time, seq)` entry.
    ///
    /// Scans day by day from the current time (every pending event is at
    /// or after `now`, so nothing can hide behind the scan start). A day
    /// maps to exactly one bucket and a bucket's front is its minimum,
    /// so the first front belonging to the scanned day is the global
    /// minimum. If a whole calendar lap is empty the remaining events
    /// are sparse — fall back to a direct scan of all bucket fronts
    /// (times in distinct buckets are always distinct, so this is
    /// unambiguous).
    fn next_bucket(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len() as u64;
        let first_day = self.now.0 >> self.shift;
        for day in first_day..first_day + nb {
            let b = (day & (nb - 1)) as usize;
            if let Some(front) = self.buckets[b].front() {
                if front.time.0 >> self.shift == day {
                    return Some(b);
                }
            }
        }
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| bucket.front().map(|e| (e.time, i)))
            .min()
            .map(|(_, i)| i)
    }

    /// Removes every event scheduled at or after `cutoff` and returns
    /// them in dispatch order (time, then insertion order), leaving
    /// earlier events queued and the clock untouched. This is the
    /// power-failure primitive: the machine dies at `cutoff`, so nothing
    /// scheduled from that cycle on can ever dispatch.
    pub fn cancel_from(&mut self, cutoff: Cycles) -> Vec<(Cycles, E)> {
        let mut cancelled: Vec<Entry<E>> = Vec::new();
        for bucket in &mut self.buckets {
            // Buckets are time-sorted, so the cancelled range is a suffix.
            let pos = bucket.partition_point(|e| e.time < cutoff);
            cancelled.extend(bucket.drain(pos..));
        }
        self.len -= cancelled.len();
        cancelled.sort_unstable_by_key(|e| (e.time, e.seq));
        if self.buckets.len() > MIN_BUCKETS && self.len < TARGET_OCCUPANCY * self.buckets.len() / 4
        {
            self.rebuild();
        }
        cancelled.into_iter().map(|e| (e.time, e.event)).collect()
    }

    /// Re-sizes the calendar to the current population and re-derives
    /// the day width so one calendar lap roughly covers the pending
    /// time span, then redistributes everything. Existing bucket
    /// buffers are reused (cleared, not dropped) where the new size
    /// allows.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..));
        }
        entries.sort_unstable_by_key(|e| (e.time, e.seq));
        let nbuckets = (self.len / TARGET_OCCUPANCY)
            .max(1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let span = match (entries.first(), entries.last()) {
            (Some(first), Some(last)) => last.time.0 - first.time.0,
            _ => 0,
        };
        let width = (span / nbuckets as u64).max(1);
        self.shift = width.next_power_of_two().trailing_zeros().min(63);
        self.buckets.truncate(nbuckets);
        self.buckets.resize_with(nbuckets, VecDeque::new);
        for entry in entries {
            // Entries arrive in ascending (time, seq) order, so plain
            // appends keep every bucket sorted.
            let b = self.bucket_of(entry.time);
            self.buckets[b].push_back(entry);
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 3);
        q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
    }

    #[test]
    fn fifo_within_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(7), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "first");
        q.pop();
        q.schedule_in(Cycles(5), "second");
        assert_eq!(q.pop(), Some((Cycles(15), "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), ());
        q.pop();
        q.schedule(Cycles(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Cycles(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn sparse_far_future_events_pop_in_order() {
        // Gaps far larger than any sensible day width exercise the
        // direct-scan fallback after an empty calendar lap.
        let mut q = EventQueue::new();
        q.schedule(Cycles(1 << 40), "far");
        q.schedule(Cycles(3), "near");
        q.schedule(Cycles(1 << 50), "farther");
        assert_eq!(q.pop(), Some((Cycles(3), "near")));
        assert_eq!(q.pop(), Some((Cycles(1 << 40), "far")));
        assert_eq!(q.pop(), Some((Cycles(1 << 50), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "4096-event population is minutes under miri")]
    fn grows_and_shrinks_across_rebuilds() {
        // Push enough to force several grow rebuilds, interleave pops to
        // force shrink rebuilds, and verify global order throughout.
        let mut q = EventQueue::new();
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut times: Vec<u64> = (0..4096)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 33) % 100_000
            })
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        times.sort_unstable();
        let mut last = (Cycles::ZERO, 0usize);
        for &expect in &times {
            let (t, i) = q.pop().expect("queue still has events");
            assert_eq!(t.0, expect);
            // FIFO among equal timestamps: insertion index must rise.
            assert!(t > last.0 || i > last.1, "tie broke insertion order");
            last = (t, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_from_splits_at_cutoff_in_dispatch_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "keep-a");
        q.schedule(Cycles(50), "cut-b");
        q.schedule(Cycles(50), "cut-c");
        q.schedule(Cycles(49), "keep-d");
        q.schedule(Cycles(70), "cut-e");
        let cancelled = q.cancel_from(Cycles(50));
        assert_eq!(
            cancelled,
            vec![
                (Cycles(50), "cut-b"),
                (Cycles(50), "cut-c"),
                (Cycles(70), "cut-e"),
            ]
        );
        assert_eq!(q.now(), Cycles::ZERO, "cancellation leaves the clock");
        assert_eq!(q.pop(), Some((Cycles(10), "keep-a")));
        assert_eq!(q.pop(), Some((Cycles(49), "keep-d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "2000-event population is minutes under miri")]
    fn cancel_from_large_population_matches_reference() {
        let mut q = EventQueue::new();
        let mut reference = Vec::new();
        let mut s: u64 = 42;
        for i in 0..2000usize {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (s >> 33) % 4096;
            q.schedule(Cycles(t), i);
            reference.push((Cycles(t), i));
        }
        reference.sort_by_key(|&(t, i)| (t, i));
        let expected_cut: Vec<_> = reference
            .iter()
            .copied()
            .filter(|&(t, _)| t >= Cycles(2048))
            .collect();
        let expected_keep: Vec<_> = reference
            .iter()
            .copied()
            .filter(|&(t, _)| t < Cycles(2048))
            .collect();
        assert_eq!(q.cancel_from(Cycles(2048)), expected_cut);
        let mut kept = Vec::new();
        while let Some(e) = q.pop() {
            kept.push(e);
        }
        assert_eq!(kept, expected_keep);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        // Event-driven usage: each pop schedules follow-ups relative to
        // the advanced clock, like a bank completion chaining a retry.
        let mut q = EventQueue::new();
        q.schedule(Cycles(0), 0u64);
        let mut popped = Vec::new();
        while let Some((t, gen)) = q.pop() {
            popped.push(t);
            if gen < 8 {
                q.schedule_in(Cycles(3), gen + 1);
                q.schedule_in(Cycles(7), gen + 1);
            }
            assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(popped.len(), (1 << 9) - 1);
    }
}
