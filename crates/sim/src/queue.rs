//! A deterministic discrete-event queue.
//!
//! Most of the drain-path timing is handled by chaining
//! [`Resource`](crate::resource::Resource) completions, but components
//! that need explicit future events (e.g. the memory controller's
//! write-pending queue draining in the background, or recovery prefetch)
//! use this queue. Events at the same timestamp pop in insertion order, so
//! simulations are fully deterministic.

use crate::clock::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time, FIFO within a timestamp.
///
/// ```
/// use horus_sim::{Cycles, queue::EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), "b");
/// q.schedule(Cycles(5), "a");
/// q.schedule(Cycles(10), "c");
/// assert_eq!(q.pop(), Some((Cycles(5), "a")));
/// assert_eq!(q.pop(), Some((Cycles(10), "b")));
/// assert_eq!(q.pop(), Some((Cycles(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Cycles,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first; ties
        // break by insertion sequence.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current time — events cannot
    /// be scheduled in the past.
    pub fn schedule(&mut self, time: Cycles, event: E) {
        assert!(time >= self.now, "cannot schedule an event in the past");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// The timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes every event scheduled at or after `cutoff` and returns
    /// them in dispatch order (time, then insertion order), leaving
    /// earlier events queued and the clock untouched. This is the
    /// power-failure primitive: the machine dies at `cutoff`, so nothing
    /// scheduled from that cycle on can ever dispatch.
    pub fn cancel_from(&mut self, cutoff: Cycles) -> Vec<(Cycles, E)> {
        let mut kept = Vec::new();
        let mut cancelled = Vec::new();
        for entry in std::mem::take(&mut self.heap).into_sorted_vec() {
            if entry.time >= cutoff {
                cancelled.push(entry);
            } else {
                kept.push(entry);
            }
        }
        // into_sorted_vec is ascending by `Ord`, which is reversed for
        // the max-heap — so it yields latest-first; restore time order.
        cancelled.reverse();
        for entry in kept {
            self.heap.push(entry);
        }
        cancelled.into_iter().map(|e| (e.time, e.event)).collect()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 3);
        q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
    }

    #[test]
    fn fifo_within_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(7), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "first");
        q.pop();
        q.schedule_in(Cycles(5), "second");
        assert_eq!(q.pop(), Some((Cycles(15), "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), ());
        q.pop();
        q.schedule(Cycles(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Cycles(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
