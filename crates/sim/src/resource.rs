//! Pipelined hardware resource models.
//!
//! A [`Resource`] models a hardware unit with a *latency* (time from issue
//! to completion) and an *initiation interval* (minimum spacing between
//! issues — 1 cycle for a fully pipelined AES engine, equal to the latency
//! for an unpipelined PCM bank). A [`BankSet`] groups several identical
//! resources with address interleaving, modelling bank-level parallelism
//! in the memory device.
//!
//! Issuing returns a [`Completion`] with the actual start and finish time;
//! callers chain completions to express data dependencies (e.g. "the MAC
//! computation starts when the ciphertext is ready").

use crate::clock::Cycles;
use crate::trace::{Probe, TraceEvent};

/// The outcome of issuing an operation to a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the resource actually accepted the operation (≥ the request
    /// time if the resource was busy).
    pub start: Cycles,
    /// When the result is available.
    pub done: Cycles,
}

/// A pipelined hardware unit with fixed latency and initiation interval.
///
/// ```
/// use horus_sim::{Cycles, Resource};
/// // Fully pipelined hash engine: 160-cycle latency, 1 op/cycle.
/// let mut hash = Resource::new("sha", Cycles(160), Cycles(1));
/// assert_eq!(hash.issue(Cycles(0)).done, Cycles(160));
/// assert_eq!(hash.issue(Cycles(0)).done, Cycles(161));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    latency: Cycles,
    interval: Cycles,
    next_issue: Cycles,
    busy_until: Cycles,
    ops: u64,
    probe: Probe,
}

impl Resource {
    /// Creates a resource.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero — a zero initiation interval would
    /// mean infinite throughput and silently hide modelling mistakes.
    #[must_use]
    pub fn new(name: &'static str, latency: Cycles, interval: Cycles) -> Self {
        assert!(
            interval.0 > 0,
            "initiation interval must be at least 1 cycle"
        );
        Self {
            name,
            latency,
            interval,
            next_issue: Cycles::ZERO,
            busy_until: Cycles::ZERO,
            ops: 0,
            probe: Probe::disabled(),
        }
    }

    /// Creates an unpipelined resource (interval = latency), such as a PCM
    /// bank that cannot overlap operations.
    #[must_use]
    pub fn unpipelined(name: &'static str, latency: Cycles) -> Self {
        Self::new(name, latency, latency.max(Cycles(1)))
    }

    /// The resource's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The per-operation latency.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Number of operations issued so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The time at which the last issued operation completes.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Issues an operation that is ready at `ready`; returns when it
    /// starts and completes.
    pub fn issue(&mut self, ready: Cycles) -> Completion {
        self.issue_inner("op", ready, self.latency, true)
    }

    /// Like [`Resource::issue`], labelling the operation `name` in the
    /// probe's trace.
    pub fn issue_named(&mut self, name: &str, ready: Cycles) -> Completion {
        self.issue_inner(name, ready, self.latency, true)
    }

    /// Issues an operation with a per-operation latency, occupying the
    /// resource for the whole duration (used by memory banks whose read
    /// and write latencies differ).
    pub fn issue_for(&mut self, ready: Cycles, latency: Cycles) -> Completion {
        self.issue_inner("op", ready, latency, false)
    }

    /// Like [`Resource::issue_for`], labelling the operation `name` in
    /// the probe's trace.
    pub fn issue_for_named(&mut self, name: &str, ready: Cycles, latency: Cycles) -> Completion {
        self.issue_inner(name, ready, latency, false)
    }

    fn issue_inner(
        &mut self,
        name: &str,
        ready: Cycles,
        latency: Cycles,
        pipelined: bool,
    ) -> Completion {
        let start = ready.max(self.next_issue);
        let done = start + latency;
        self.next_issue = if pipelined {
            start + self.interval
        } else {
            done
        };
        self.busy_until = self.busy_until.max(done);
        self.ops += 1;
        let completion = Completion { start, done };
        self.probe.record(name, ready, completion);
        completion
    }

    /// Starts recording issued operations under the resource's own name.
    pub fn enable_probe(&mut self) {
        self.probe.enable(self.name);
    }

    /// Starts recording under an explicit track label (used by bank sets
    /// to distinguish their members, e.g. `"pcm[3]"`).
    pub fn enable_probe_as(&mut self, track: String) {
        self.probe.enable(track);
    }

    /// Whether a probe is attached; callers can skip building operation
    /// labels when this is `false`.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    /// Drains the probe's recorded events (empty when disabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.probe.take()
    }

    /// Resets occupancy and operation counts (a new simulation episode).
    /// An attached probe stays attached but its buffer is dropped.
    pub fn reset(&mut self) {
        self.next_issue = Cycles::ZERO;
        self.busy_until = Cycles::ZERO;
        self.ops = 0;
        self.probe.clear();
    }
}

/// A group of identical [`Resource`]s selected by address interleaving,
/// modelling banked memory devices.
///
/// Addresses map to banks by block index modulo the number of banks, the
/// usual low-order interleaving.
///
/// ```
/// use horus_sim::{BankSet, Cycles};
/// let mut banks = BankSet::unpipelined("pcm", 4, Cycles(2000));
/// // Two writes to different banks overlap fully.
/// let a = banks.issue_addr(0x0000, Cycles(0));
/// let b = banks.issue_addr(0x0040, Cycles(0));
/// assert_eq!(a.done, b.done);
/// // A third write hitting bank 0 again serializes.
/// let c = banks.issue_addr(0x0100, Cycles(0));
/// assert_eq!(c.done, Cycles(4000));
/// ```
#[derive(Debug, Clone)]
pub struct BankSet {
    banks: Vec<Resource>,
    block_shift: u32,
}

impl BankSet {
    /// Block size assumed for address→bank interleaving (64 B).
    pub const BLOCK_SHIFT: u32 = 6;

    /// Creates `n` unpipelined banks with the given per-op latency.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn unpipelined(name: &'static str, n: usize, latency: Cycles) -> Self {
        assert!(n > 0, "bank set must contain at least one bank");
        Self {
            banks: vec![Resource::unpipelined(name, latency); n],
            block_shift: Self::BLOCK_SHIFT,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether the set is empty (never true — construction requires ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// The bank index an address maps to.
    ///
    /// The block index is XOR-folded before the modulo — the bank-address
    /// hashing real memory controllers use so strided streams (which are
    /// exactly what metadata regions produce) still spread across banks.
    #[must_use]
    pub fn bank_of(&self, address: u64) -> usize {
        let idx = address >> self.block_shift;
        let folded = idx ^ (idx >> 4) ^ (idx >> 8) ^ (idx >> 12) ^ (idx >> 16) ^ (idx >> 24);
        (folded % self.banks.len() as u64) as usize
    }

    /// Issues an operation on the bank owning `address`.
    pub fn issue_addr(&mut self, address: u64, ready: Cycles) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue(ready)
    }

    /// Like [`BankSet::issue_addr`], labelling the operation `name` in
    /// the owning bank's trace.
    pub fn issue_addr_named(&mut self, name: &str, address: u64, ready: Cycles) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue_named(name, ready)
    }

    /// Issues an operation with an explicit latency on the bank owning
    /// `address` (reads and writes have different PCM latencies but share
    /// the bank).
    pub fn issue_addr_for(&mut self, address: u64, ready: Cycles, latency: Cycles) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue_for(ready, latency)
    }

    /// Like [`BankSet::issue_addr_for`], labelling the operation `name`
    /// in the owning bank's trace.
    pub fn issue_addr_for_named(
        &mut self,
        name: &str,
        address: u64,
        ready: Cycles,
        latency: Cycles,
    ) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue_for_named(name, ready, latency)
    }

    /// Issues on an explicit bank index (for round-robin scheduling of
    /// sequential streams).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn issue_bank(&mut self, bank: usize, ready: Cycles) -> Completion {
        self.banks[bank].issue(ready)
    }

    /// Starts recording per-bank traces under bank-indexed tracks
    /// (`"pcm[0]"`, `"pcm[1]"`, …).
    pub fn enable_probe(&mut self) {
        for (i, b) in self.banks.iter_mut().enumerate() {
            let track = format!("{}[{i}]", b.name());
            b.enable_probe_as(track);
        }
    }

    /// Whether the banks record traces.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.banks.first().is_some_and(Resource::probe_enabled)
    }

    /// Drains every bank's recorded events, in bank-index order.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.banks
            .iter_mut()
            .flat_map(Resource::take_trace)
            .collect()
    }

    /// Total operations across all banks.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.banks.iter().map(Resource::ops).sum()
    }

    /// Completion time of the last operation across all banks.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.banks
            .iter()
            .map(Resource::busy_until)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Resets all banks.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_resource_overlaps() {
        let mut r = Resource::new("aes", Cycles(40), Cycles(1));
        let a = r.issue(Cycles(0));
        let b = r.issue(Cycles(0));
        let c = r.issue(Cycles(100));
        assert_eq!(
            a,
            Completion {
                start: Cycles(0),
                done: Cycles(40)
            }
        );
        assert_eq!(
            b,
            Completion {
                start: Cycles(1),
                done: Cycles(41)
            }
        );
        // Ready later than the pipeline frees: starts at ready time.
        assert_eq!(
            c,
            Completion {
                start: Cycles(100),
                done: Cycles(140)
            }
        );
        assert_eq!(r.ops(), 3);
        assert_eq!(r.busy_until(), Cycles(140));
    }

    #[test]
    fn unpipelined_resource_serializes() {
        let mut r = Resource::unpipelined("bank", Cycles(2000));
        let a = r.issue(Cycles(0));
        let b = r.issue(Cycles(0));
        assert_eq!(a.done, Cycles(2000));
        assert_eq!(b.start, Cycles(2000));
        assert_eq!(b.done, Cycles(4000));
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_interval_rejected() {
        let _ = Resource::new("bad", Cycles(10), Cycles(0));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::unpipelined("bank", Cycles(10));
        r.issue(Cycles(0));
        r.reset();
        assert_eq!(r.ops(), 0);
        assert_eq!(r.issue(Cycles(0)).start, Cycles(0));
    }

    #[test]
    fn bank_interleaving() {
        let banks = BankSet::unpipelined("pcm", 8, Cycles(100));
        assert_eq!(banks.bank_of(0x0000), 0);
        assert_eq!(banks.bank_of(0x0040), 1);
        assert_eq!(banks.bank_of(0x0040 * 8), 0);
        assert_eq!(banks.len(), 8);
        assert!(!banks.is_empty());
    }

    #[test]
    fn banks_parallelize_distinct_addresses() {
        let mut banks = BankSet::unpipelined("pcm", 4, Cycles(1000));
        let done: Vec<_> = (0..4)
            .map(|i| banks.issue_addr(i * 64, Cycles(0)).done)
            .collect();
        assert!(done.iter().all(|d| *d == Cycles(1000)));
        assert_eq!(banks.ops(), 4);
        assert_eq!(banks.busy_until(), Cycles(1000));
    }

    #[test]
    fn same_bank_conflict_serializes() {
        let mut banks = BankSet::unpipelined("pcm", 4, Cycles(1000));
        banks.issue_addr(0, Cycles(0));
        let second = banks.issue_addr(4 * 64, Cycles(0));
        assert_eq!(second.start, Cycles(1000));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn empty_bank_set_rejected() {
        let _ = BankSet::unpipelined("pcm", 0, Cycles(1));
    }

    #[test]
    fn probe_captures_issues_without_changing_timing() {
        let mut plain = Resource::new("aes", Cycles(40), Cycles(1));
        let mut probed = Resource::new("aes", Cycles(40), Cycles(1));
        probed.enable_probe();
        assert!(probed.probe_enabled() && !plain.probe_enabled());
        for i in 0..3 {
            let a = plain.issue(Cycles(i));
            let b = probed.issue_named("otp", Cycles(i));
            assert_eq!(a, b);
        }
        assert!(plain.take_trace().is_empty());
        let trace = probed.take_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].track, "aes");
        assert_eq!(trace[0].name, "otp");
        assert_eq!(trace[1].start, 1);
    }

    #[test]
    fn bank_set_probe_uses_indexed_tracks() {
        let mut banks = BankSet::unpipelined("pcm", 4, Cycles(100));
        banks.enable_probe();
        assert!(banks.probe_enabled());
        banks.issue_addr_named("write.data", 0, Cycles(0));
        banks.issue_addr_for_named("read.counter", 64, Cycles(0), Cycles(60));
        let trace = banks.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].track, "pcm[0]");
        assert_eq!(trace[1].track, "pcm[1]");
        assert_eq!(trace[1].end, 60);
    }

    #[test]
    fn reset_keeps_probe_but_drops_events() {
        let mut r = Resource::unpipelined("bank", Cycles(10));
        r.enable_probe();
        r.issue(Cycles(0));
        r.reset();
        assert!(r.probe_enabled());
        assert!(r.take_trace().is_empty());
    }
}
