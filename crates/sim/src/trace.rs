//! Cycle-stamped episode tracing — the *horus-probe* observability
//! layer.
//!
//! Every timed component can carry a [`Probe`]: a detachable recorder
//! that, when enabled, captures one [`TraceEvent`] per issued operation
//! (which *track* — hardware resource — served it, what the operation
//! was, when it was ready, when it actually started, and when it
//! finished). Disabled probes cost one branch per issue and record
//! nothing, so the default simulation path is unchanged.
//!
//! On top of the raw event stream this module derives the three probe
//! products:
//!
//! * [`chrome_trace_json`] — a Chrome-trace-event JSON document
//!   (loadable in Perfetto / `chrome://tracing`), one track per
//!   resource, duration events in core cycles;
//! * [`resource_usage`] — per-resource busy-cycle utilization and
//!   queueing-delay percentiles (from a power-of-two
//!   [`Histogram`] of `start - ready` waits);
//! * [`critical_path`] — a walk of the recorded completion-dependency
//!   chain, attributing the episode's span to the resources that bound
//!   it.
//!
//! The sink abstraction is deliberately tiny: [`TraceSink`] is the
//! recording interface, [`NullSink`] is the disabled default, and
//! [`MemorySink`] is the in-memory buffer every probed component uses.

use crate::clock::Cycles;
use crate::resource::Completion;
use crate::stats::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded operation: a span on a named resource track.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The resource (or phase) track the span belongs to, e.g.
    /// `"pcm-bank[3]"`, `"aes"`, `"hash"`, `"phase"`.
    pub track: String,
    /// The operation, e.g. `"write.chv_data"`, `"mac.chv_entry"`,
    /// `"drain.data"`.
    pub name: String,
    /// When the operation's inputs were available (request time).
    pub ready: u64,
    /// When the resource actually started serving it (`>= ready`).
    pub start: u64,
    /// When it completed.
    pub end: u64,
}

impl TraceEvent {
    /// Cycles the operation waited between being ready and starting.
    #[must_use]
    pub fn wait(&self) -> u64 {
        self.start.saturating_sub(self.ready)
    }

    /// The span's service time.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Where probed components deliver events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether recording is active; callers may skip building events
    /// (and their string labels) entirely when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The disabled default: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// An in-memory event buffer, in recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Removes and returns every recorded event.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A detachable per-component recorder: `None` (the default) behaves
/// like [`NullSink`] at the cost of one branch per issue; enabling it
/// attaches a [`MemorySink`] under a track label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Probe {
    inner: Option<Box<ProbeInner>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ProbeInner {
    track: String,
    sink: MemorySink,
}

impl Probe {
    /// A disabled probe (the default for every component).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Enables recording under `track`, discarding any prior buffer.
    pub fn enable(&mut self, track: impl Into<String>) {
        self.inner = Some(Box::new(ProbeInner {
            track: track.into(),
            sink: MemorySink::new(),
        }));
    }

    /// Whether the probe records.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The track label, when enabled.
    #[must_use]
    pub fn track(&self) -> Option<&str> {
        self.inner.as_deref().map(|p| p.track.as_str())
    }

    /// Records a completed operation (no-op when disabled).
    #[inline]
    pub fn record(&mut self, name: &str, ready: Cycles, completion: Completion) {
        if let Some(p) = self.inner.as_deref_mut() {
            p.sink.record(TraceEvent {
                track: p.track.clone(),
                name: name.to_owned(),
                ready: ready.0,
                start: completion.start.0,
                end: completion.done.0,
            });
        }
    }

    /// Records an explicit span (phase markers; no-op when disabled).
    pub fn record_span(&mut self, name: &str, start: u64, end: u64) {
        if let Some(p) = self.inner.as_deref_mut() {
            p.sink.record(TraceEvent {
                track: p.track.clone(),
                name: name.to_owned(),
                ready: start,
                start,
                end,
            });
        }
    }

    /// Removes and returns the recorded events (stays enabled).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.inner
            .as_deref_mut()
            .map(|p| p.sink.take())
            .unwrap_or_default()
    }

    /// Drops buffered events without disabling (a new episode).
    pub fn clear(&mut self) {
        if let Some(p) = self.inner.as_deref_mut() {
            p.sink.take();
        }
    }
}

/// The resource class a track belongs to: the track name with any
/// bank index stripped (`"pcm-bank[3]"` → `"pcm-bank"`).
#[must_use]
pub fn base_resource(track: &str) -> &str {
    track.split('[').next().unwrap_or(track)
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome-trace-event JSON document, loadable in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// Tracks become threads of one process: a `thread_name` metadata
/// event names each, then every [`TraceEvent`] becomes a complete
/// (`"ph":"X"`) duration event with `ts`/`dur` in **core cycles** (the
/// viewer's time unit labels read as microseconds; only ratios
/// matter). The output is deterministic: tracks are numbered in sorted
/// order and events appear in recording order, so identical episodes
/// serialize byte-identically.
///
/// The JSON is assembled by hand — no serializer involved — so the
/// byte-for-byte output is stable across serde versions and feature
/// sets.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        let next = tids.len();
        tids.entry(e.track.as_str()).or_insert(next);
    }
    // Re-number in sorted track order so tids are stable no matter the
    // recording order.
    let tids: BTreeMap<&str, usize> = tids
        .keys()
        .enumerate()
        .map(|(i, track)| (*track, i))
        .collect();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (track, tid) in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }
    for e in events {
        let tid = tids[e.track.as_str()];
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"args\":{{\"ready\":{},\"wait\":{}}}}}",
            e.start,
            e.duration(),
            escape_json(&e.name),
            e.ready,
            e.wait()
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

// ---------------------------------------------------------------------
// Utilization
// ---------------------------------------------------------------------

/// Busy-cycle and queueing-delay summary for one resource track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// The track (bank-indexed where applicable, e.g. `"pcm-bank[3]"`).
    pub track: String,
    /// Operations served.
    pub ops: u64,
    /// Cycles with at least one operation in flight (union of spans).
    pub busy_cycles: u64,
    /// Episode length the utilization is measured against.
    pub total_cycles: u64,
    /// `busy_cycles / total_cycles` (0 when the episode is empty).
    pub utilization: f64,
    /// Mean queueing delay (`start - ready`) in cycles.
    pub queue_mean: f64,
    /// Median queueing-delay bound (power-of-two bucket upper edge).
    pub queue_p50: u64,
    /// 99th-percentile queueing-delay bound.
    pub queue_p99: u64,
    /// Largest observed queueing delay.
    pub queue_max: u64,
}

/// Derives per-track utilization from an event stream.
///
/// Busy time is the union of the track's spans — the fraction of the
/// episode the unit had at least one operation in flight — which
/// equals slot occupancy for exclusive devices and "pipeline
/// non-empty" for pipelined engines. Tracks are returned in name
/// order.
#[must_use]
pub fn resource_usage(events: &[TraceEvent], total_cycles: u64) -> Vec<ResourceUsage> {
    let mut spans: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
    let mut waits: BTreeMap<&str, Histogram> = BTreeMap::new();
    for e in events {
        spans
            .entry(e.track.as_str())
            .or_default()
            .push((e.start, e.end));
        waits.entry(e.track.as_str()).or_default().record(e.wait());
    }
    spans
        .into_iter()
        .map(|(track, mut sp)| {
            sp.sort_unstable();
            let mut busy = 0u64;
            let mut cur: Option<(u64, u64)> = None;
            for (s, e) in sp.iter().copied() {
                match cur {
                    Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                    Some((cs, ce)) => {
                        busy += ce - cs;
                        cur = Some((s, e));
                        let _ = cs;
                    }
                    None => cur = Some((s, e)),
                }
            }
            if let Some((cs, ce)) = cur {
                busy += ce - cs;
            }
            let h = &waits[track];
            ResourceUsage {
                track: track.to_owned(),
                ops: sp.len() as u64,
                busy_cycles: busy,
                total_cycles,
                utilization: if total_cycles == 0 {
                    0.0
                } else {
                    busy as f64 / total_cycles as f64
                },
                queue_mean: h.mean().unwrap_or(0.0),
                queue_p50: h.quantile_bound(0.5).unwrap_or(0),
                queue_p99: h.quantile_bound(0.99).unwrap_or(0),
                queue_max: h.max().unwrap_or(0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------

/// One resource class's share of the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathShare {
    /// The resource class ([`base_resource`] of the track).
    pub resource: String,
    /// Episode-timeline cycles attributed to the class on the path.
    pub cycles: u64,
    /// `cycles` over the sum of all shares.
    pub fraction: f64,
}

/// The result of walking the completion-dependency chain backward from
/// the episode's last-finishing operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathSummary {
    /// Episode length (completion time of the last operation).
    pub total_cycles: u64,
    /// Operations on the reconstructed path.
    pub steps: u64,
    /// The resource class with the largest share — what bounds the
    /// episode.
    pub bounding_resource: String,
    /// Every class's share, largest first.
    pub shares: Vec<CriticalPathShare>,
}

/// Walks the recorded dependency chain backward from the last
/// completion and attributes the episode to resource classes.
///
/// Two predecessor rules, applied in order at each step:
///
/// 1. **Data dependency** — an event whose `end` equals the current
///    event's `ready` produced its input (the drain engines chain
///    completions exactly this way).
/// 2. **Contention** — if the event waited (`start > ready`), the
///    same-track event with the greatest `end ≤ start` held the
///    resource.
///
/// Each visited event contributes the timeline segment between its
/// predecessor's completion and its own completion to its track's
/// resource class (the earliest path event is credited from cycle
/// zero), so the shares tile the episode and sum to the path head's
/// completion time — never more than the episode. Ties are broken
/// deterministically (latest `end`, then `start`, then track/name
/// order), so the summary is a pure function of the event stream.
/// Returns `None` for an empty stream.
#[must_use]
pub fn critical_path(events: &[TraceEvent], total_cycles: u64) -> Option<CriticalPathSummary> {
    if events.is_empty() {
        return None;
    }
    let key = |e: &TraceEvent| (e.end, e.start, e.track.clone(), e.name.clone());
    // end time -> candidate producers, per-track spans for contention.
    let mut by_end: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut by_track: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        by_end.entry(e.end).or_default().push(i);
        by_track.entry(e.track.as_str()).or_default().push(i);
    }
    for v in by_track.values_mut() {
        v.sort_by_key(|i| (events[*i].end, events[*i].start));
    }
    let pick_max = |candidates: &[usize]| -> usize {
        candidates
            .iter()
            .copied()
            .max_by_key(|i| key(&events[*i]))
            .expect("non-empty candidate list")
    };

    let mut cur = pick_max(&(0..events.len()).collect::<Vec<_>>());
    let mut attributed: BTreeMap<String, u64> = BTreeMap::new();
    let mut steps = 0u64;
    for _ in 0..events.len() {
        let e = &events[cur];
        steps += 1;
        // Rule 1: the producer whose completion made this op ready.
        let producer = (e.ready > 0)
            .then(|| by_end.get(&e.ready))
            .flatten()
            .map(|c| pick_max(c));
        let next = match producer {
            Some(p) if p != cur => Some(p),
            _ if e.wait() > 0 => {
                // Rule 2: the same-track op that held the resource.
                let track_events = &by_track[e.track.as_str()];
                track_events
                    .iter()
                    .copied()
                    .filter(|i| *i != cur && events[*i].end <= e.start)
                    .max_by_key(|i| key(&events[*i]))
            }
            _ => None,
        };
        // Only follow strictly-earlier predecessors: guards against
        // pathological event streams with self-referential times.
        let next = next.filter(|n| key(&events[*n]) < key(e));
        // Credit this step with the timeline segment it closes: from
        // its predecessor's completion (cycle zero at the path's start)
        // to its own. Segments tile [0, path head's end] exactly.
        let pred_end = next.map_or(0, |n| events[n].end);
        *attributed
            .entry(base_resource(&e.track).to_owned())
            .or_insert(0) += e.end.saturating_sub(pred_end);
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }

    let total_attr: u64 = attributed.values().sum();
    let mut shares: Vec<CriticalPathShare> = attributed
        .into_iter()
        .map(|(resource, cycles)| CriticalPathShare {
            resource,
            cycles,
            fraction: if total_attr == 0 {
                0.0
            } else {
                cycles as f64 / total_attr as f64
            },
        })
        .collect();
    shares.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.resource.cmp(&b.resource)));
    let bounding_resource = shares.first().map(|s| s.resource.clone())?;
    Some(CriticalPathSummary {
        total_cycles,
        steps,
        bounding_resource,
        shares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: &str, name: &str, ready: u64, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            track: track.into(),
            name: name.into(),
            ready,
            start,
            end,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.record(ev("x", "y", 0, 0, 1));
    }

    #[test]
    fn probe_records_only_when_enabled() {
        let mut p = Probe::disabled();
        p.record(
            "op",
            Cycles(0),
            Completion {
                start: Cycles(0),
                done: Cycles(5),
            },
        );
        assert!(!p.enabled());
        assert!(p.take().is_empty());

        p.enable("pcm[0]");
        assert_eq!(p.track(), Some("pcm[0]"));
        p.record(
            "write.data",
            Cycles(3),
            Completion {
                start: Cycles(10),
                done: Cycles(2010),
            },
        );
        let events = p.take();
        assert_eq!(events, vec![ev("pcm[0]", "write.data", 3, 10, 2010)]);
        assert_eq!(events[0].wait(), 7);
        assert_eq!(events[0].duration(), 2000);
        assert!(p.take().is_empty(), "take drains");
        assert!(p.enabled(), "take keeps the probe on");
    }

    #[test]
    fn base_resource_strips_bank_index() {
        assert_eq!(base_resource("pcm-bank[13]"), "pcm-bank");
        assert_eq!(base_resource("hash"), "hash");
    }

    #[test]
    fn chrome_json_is_valid_and_deterministic() {
        let events = vec![
            ev("pcm[1]", "write.data", 0, 0, 2000),
            ev("aes", "otp.data", 0, 0, 40),
        ];
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.ends_with('}'));
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"name\":\"write.data\""));
        // aes sorts before pcm[1]: tid 0 and 1 respectively.
        assert!(a.contains("\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"aes\"}"));
        // Balanced braces (cheap well-formedness check).
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn chrome_json_escapes_strings() {
        let events = vec![ev("t", "we\"ird\\name", 0, 0, 1)];
        let json = chrome_trace_json(&events);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn usage_unions_overlapping_spans() {
        // Two overlapping ops (pipelined engine) and one gap.
        let events = vec![
            ev("hash", "mac.a", 0, 0, 160),
            ev("hash", "mac.b", 0, 40, 200),
            ev("hash", "mac.c", 300, 300, 460),
        ];
        let usage = resource_usage(&events, 1000);
        assert_eq!(usage.len(), 1);
        let u = &usage[0];
        assert_eq!(u.ops, 3);
        assert_eq!(u.busy_cycles, 200 + 160);
        assert!((u.utilization - 0.36).abs() < 1e-9);
        assert_eq!(u.queue_max, 40);
    }

    #[test]
    fn usage_orders_tracks_by_name() {
        let events = vec![
            ev("pcm[1]", "w", 0, 0, 10),
            ev("aes", "o", 0, 0, 10),
            ev("pcm[0]", "w", 0, 0, 10),
        ];
        let tracks: Vec<_> = resource_usage(&events, 10)
            .into_iter()
            .map(|u| u.track)
            .collect();
        assert_eq!(tracks, ["aes", "pcm[0]", "pcm[1]"]);
    }

    #[test]
    fn critical_path_follows_dependencies_and_contention() {
        // read (bank) -> mac (hash, waits on engine held by mac0).
        let events = vec![
            ev("hash", "mac.other", 0, 0, 160),
            ev("pcm[0]", "read.counter", 0, 0, 600),
            ev("hash", "mac.verify", 600, 640, 800),
        ];
        let cp = critical_path(&events, 800).expect("nonempty");
        assert_eq!(cp.total_cycles, 800);
        // Path: mac.verify -> read.counter (produced ready=600) -> done.
        assert_eq!(cp.steps, 2);
        assert_eq!(cp.bounding_resource, "pcm");
        let hash_share = cp.shares.iter().find(|s| s.resource == "hash").unwrap();
        // verify: 160 service + 40 wait.
        assert_eq!(hash_share.cycles, 200);
        let pcm_share = cp.shares.iter().find(|s| s.resource == "pcm").unwrap();
        assert_eq!(pcm_share.cycles, 600);
        let frac_sum: f64 = cp.shares.iter().map(|s| s.fraction).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_contention_only_chain() {
        // Three serialized ops on one unpipelined bank, no data deps.
        let events = vec![
            ev("pcm[0]", "w1", 0, 0, 2000),
            ev("pcm[0]", "w2", 0, 2000, 4000),
            ev("pcm[0]", "w3", 0, 4000, 6000),
        ];
        let cp = critical_path(&events, 6000).expect("nonempty");
        assert_eq!(cp.steps, 3);
        assert_eq!(cp.bounding_resource, "pcm");
        // The three serialized writes tile the whole episode.
        assert_eq!(cp.shares[0].cycles, 6000);
    }

    #[test]
    fn critical_path_empty_is_none() {
        assert!(critical_path(&[], 0).is_none());
    }

    #[test]
    fn critical_path_is_deterministic() {
        let events: Vec<TraceEvent> = (0..50)
            .map(|i| ev(&format!("pcm[{}]", i % 4), "w", i * 7, i * 11, i * 11 + 500))
            .collect();
        let a = critical_path(&events, 10_000).unwrap();
        let b = critical_path(&events, 10_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut s = MemorySink::new();
        s.record(ev("a", "x", 0, 0, 1));
        s.record(ev("b", "y", 1, 1, 2));
        assert!(s.is_enabled());
        assert_eq!(s.events().len(), 2);
        let taken = s.take();
        assert_eq!(taken[0].track, "a");
        assert!(s.events().is_empty());
    }
}
