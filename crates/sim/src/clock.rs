//! Simulation time base.
//!
//! All timing in the simulator is expressed in core clock [`Cycles`]; the
//! paper's Table I gives device latencies in nanoseconds (PCM read 150 ns,
//! write 500 ns) and engine latencies in cycles (AES 40, hash 160), so
//! [`Frequency`] converts between the two.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A duration or instant measured in core clock cycles.
///
/// `Cycles` is used both as a point in simulated time and as a duration;
/// arithmetic panics on overflow in debug builds like plain `u64`.
///
/// ```
/// use horus_sim::Cycles;
/// assert_eq!(Cycles(40) + Cycles(160), Cycles(200));
/// assert_eq!(Cycles(200) * 3, Cycles(600));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles — the simulation epoch.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Saturating subtraction: the duration from `other` to `self`, or
    /// zero if `other` is later.
    #[must_use]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock frequency, used to convert between nanoseconds and [`Cycles`].
///
/// ```
/// use horus_sim::Frequency;
/// let f = Frequency::ghz(4);
/// assert_eq!(f.ns_to_cycles(500.0).0, 2000);
/// assert!((f.cycles_to_ns(horus_sim::Cycles(2000)) - 500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency of `n` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn ghz(n: u64) -> Self {
        assert!(n > 0, "frequency must be positive");
        Self { hz: n as f64 * 1e9 }
    }

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    #[must_use]
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Self { hz }
    }

    /// The frequency in hertz.
    #[must_use]
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Converts a duration in nanoseconds to cycles, rounding up (a device
    /// busy for 1.1 cycles occupies 2).
    #[must_use]
    pub fn ns_to_cycles(self, ns: f64) -> Cycles {
        Cycles((ns * self.hz / 1e9).ceil() as u64)
    }

    /// Converts cycles to nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(self, c: Cycles) -> f64 {
        c.0 as f64 * 1e9 / self.hz
    }

    /// Converts cycles to seconds.
    #[must_use]
    pub fn cycles_to_seconds(self, c: Cycles) -> f64 {
        c.0 as f64 / self.hz
    }
}

impl Default for Frequency {
    /// The paper's 4 GHz core clock.
    fn default() -> Self {
        Frequency::ghz(4)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.hz / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let mut c = Cycles(10);
        c += Cycles(5);
        assert_eq!(c, Cycles(15));
        c -= Cycles(3);
        assert_eq!(c, Cycles(12));
        assert_eq!(c - Cycles(2), Cycles(10));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(5).max(Cycles(9)), Cycles(9));
        assert_eq!(Cycles(5).min(Cycles(9)), Cycles(5));
        assert_eq!(Cycles(5).saturating_sub(Cycles(9)), Cycles::ZERO);
        assert_eq!(Cycles(9).saturating_sub(Cycles(5)), Cycles(4));
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::ghz(4);
        assert_eq!(f.ns_to_cycles(150.0), Cycles(600));
        assert_eq!(f.ns_to_cycles(500.0), Cycles(2000));
        // Rounds up.
        assert_eq!(f.ns_to_cycles(0.1), Cycles(1));
        assert!((f.cycles_to_seconds(Cycles(4_000_000_000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::ghz(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Cycles(7)), "7 cycles");
        assert_eq!(format!("{}", Frequency::ghz(4)), "4.000 GHz");
    }
}
