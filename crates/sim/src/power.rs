//! Power-failure injection: cutting the simulation at an arbitrary cycle.
//!
//! The drain engines model an outage window: back-up power covers the
//! flush, then the machine dies. A *crash-point* experiment asks the
//! opposite question — what if the back-up power itself fails `C` cycles
//! into the drain? [`PowerFailure`] is the cut: it classifies every
//! issued operation's [`Completion`] against the failure cycle into a
//! [`WriteFate`] (finished, never started, or caught mid-flight), and it
//! halts an [`EventQueue`] by cancelling every
//! event the dead machine can no longer dispatch.
//!
//! The classification is the timing half of the torn-write model; what a
//! mid-flight NVM write leaves behind is the functional half and lives in
//! `horus-nvm`.

use crate::clock::Cycles;
use crate::queue::EventQueue;
use crate::resource::Completion;
use serde::{Deserialize, Serialize};

/// What the power failure did to one issued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// The operation completed strictly before the cut: its effect is
    /// durable.
    Durable,
    /// The operation had not started at the cut: it never happened.
    Lost,
    /// The cut landed inside the operation's `[start, done)` window.
    Torn {
        /// Cycles of progress the operation made before the cut
        /// (`at - start`, in `1..duration`... zero when the cut lands
        /// exactly on `start`).
        elapsed: Cycles,
        /// The operation's full service time (`done - start`).
        duration: Cycles,
    },
}

impl WriteFate {
    /// Whether the fate is [`WriteFate::Torn`].
    #[must_use]
    pub fn is_torn(&self) -> bool {
        matches!(self, WriteFate::Torn { .. })
    }
}

/// A power failure injected at an absolute cycle.
///
/// ```
/// use horus_sim::{Completion, Cycles};
/// use horus_sim::power::{PowerFailure, WriteFate};
/// let cut = PowerFailure::at(Cycles(100));
/// let done = Completion { start: Cycles(0), done: Cycles(100) };
/// let torn = Completion { start: Cycles(50), done: Cycles(150) };
/// let never = Completion { start: Cycles(100), done: Cycles(200) };
/// assert_eq!(cut.fate_of(&done), WriteFate::Durable);
/// assert!(cut.fate_of(&torn).is_torn());
/// assert_eq!(cut.fate_of(&never), WriteFate::Lost);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerFailure {
    at: Cycles,
}

impl PowerFailure {
    /// A power failure striking at cycle `at`.
    #[must_use]
    pub fn at(at: Cycles) -> Self {
        Self { at }
    }

    /// The failure cycle.
    #[must_use]
    pub fn cycle(&self) -> Cycles {
        self.at
    }

    /// Classifies one completion against the cut.
    ///
    /// An operation finishing exactly at the failure cycle counts as
    /// durable (its last cycle of work was `at - 1`); one starting
    /// exactly at the failure cycle never happened.
    #[must_use]
    pub fn fate_of(&self, c: &Completion) -> WriteFate {
        if c.done <= self.at {
            WriteFate::Durable
        } else if c.start >= self.at {
            WriteFate::Lost
        } else {
            WriteFate::Torn {
                elapsed: Cycles(self.at.0 - c.start.0),
                duration: Cycles(c.done.0 - c.start.0),
            }
        }
    }

    /// Halts an event queue at the cut: removes and returns every event
    /// scheduled at or after the failure cycle (the dispatcher is dead;
    /// they will never fire), in time order. Events strictly before the
    /// cut stay queued — they already happened.
    pub fn halt<E>(&self, queue: &mut EventQueue<E>) -> Vec<(Cycles, E)> {
        queue.cancel_from(self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(start: u64, done: u64) -> Completion {
        Completion {
            start: Cycles(start),
            done: Cycles(done),
        }
    }

    #[test]
    fn fate_boundaries_are_exact() {
        let cut = PowerFailure::at(Cycles(1000));
        assert_eq!(cut.fate_of(&c(0, 1000)), WriteFate::Durable);
        assert_eq!(cut.fate_of(&c(0, 999)), WriteFate::Durable);
        assert_eq!(cut.fate_of(&c(1000, 2000)), WriteFate::Lost);
        assert_eq!(cut.fate_of(&c(1001, 2000)), WriteFate::Lost);
        assert_eq!(
            cut.fate_of(&c(999, 1001)),
            WriteFate::Torn {
                elapsed: Cycles(1),
                duration: Cycles(2),
            }
        );
    }

    #[test]
    fn torn_progress_is_proportional() {
        let cut = PowerFailure::at(Cycles(500));
        match cut.fate_of(&c(0, 2000)) {
            WriteFate::Torn { elapsed, duration } => {
                assert_eq!(elapsed, Cycles(500));
                assert_eq!(duration, Cycles(2000));
            }
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn cut_at_zero_loses_everything() {
        let cut = PowerFailure::at(Cycles::ZERO);
        assert_eq!(cut.fate_of(&c(0, 2000)), WriteFate::Lost);
        assert!(!cut.fate_of(&c(0, 1)).is_torn());
    }

    #[test]
    fn halt_cancels_only_future_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "early");
        q.schedule(Cycles(100), "at-cut");
        q.schedule(Cycles(100), "at-cut-2");
        q.schedule(Cycles(200), "late");
        let cancelled = PowerFailure::at(Cycles(100)).halt(&mut q);
        assert_eq!(
            cancelled,
            vec![
                (Cycles(100), "at-cut"),
                (Cycles(100), "at-cut-2"),
                (Cycles(200), "late"),
            ]
        );
        assert_eq!(q.pop(), Some((Cycles(10), "early")));
        assert_eq!(q.pop(), None);
    }
}
