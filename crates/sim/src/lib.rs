//! Discrete-event simulation substrate for the Horus reproduction.
//!
//! The paper evaluates Horus on gem5; this crate is the from-scratch
//! equivalent substrate: a small, deterministic timing model consisting of
//!
//! * [`clock`] — the [`clock::Cycles`] time base and
//!   [`clock::Frequency`] conversions between wall-clock
//!   nanoseconds and core cycles (the paper's core runs at 4 GHz);
//! * [`resource`] — pipelined hardware resources ([`resource::Resource`])
//!   with a latency and an initiation interval, and banked groups of
//!   them ([`resource::BankSet`])
//!   used to model PCM banks, AES engines and hash engines;
//! * [`queue`] — a deterministic [`queue::EventQueue`] for
//!   callers that need full event-driven control;
//! * [`power`] — crash-point injection: a [`power::PowerFailure`] cut
//!   that classifies in-flight operations ([`power::WriteFate`]) and
//!   halts event dispatch at an arbitrary cycle;
//! * [`stats`] — a [`stats::Stats`] registry of named counters and
//!   power-of-two [`stats::Histogram`]s, used by every layer to
//!   report the breakdowns shown in the paper's figures;
//! * [`trace`] — the *horus-probe* observability layer: detachable
//!   per-resource [`trace::Probe`]s feeding cycle-stamped
//!   [`trace::TraceEvent`]s into a [`trace::TraceSink`]
//!   (zero-overhead [`trace::NullSink`] by default), plus the
//!   Chrome-trace JSON exporter, per-resource utilization report and
//!   critical-path attribution built on the event stream;
//! * [`shards`] — [`shards::EpisodeShards`], deterministic fan-out of
//!   *independent* episodes onto worker threads with a submission-order
//!   merge (byte-identical to a serial run);
//! * [`arena`] — [`arena::ScratchArena`], recycling pools for per-episode
//!   scratch vectors so steady-state episodes stay off the allocator.
//!
//! The drain engines in `horus-core` drive these resources operation by
//! operation; the completion time of the last operation is the draining
//! time that defines the EPD hold-up budget.
//!
//! # Example
//!
//! ```
//! use horus_sim::clock::{Cycles, Frequency};
//! use horus_sim::resource::Resource;
//!
//! // A 4 GHz core and an NVM write port: 500 ns latency, one write
//! // accepted every 500 ns.
//! let f = Frequency::ghz(4);
//! let lat = f.ns_to_cycles(500.0);
//! let mut port = Resource::new("nvm-write", lat, lat);
//! let first = port.issue(Cycles(0));
//! let second = port.issue(Cycles(0));
//! assert_eq!(first.done, lat);
//! assert_eq!(second.done, Cycles(2 * lat.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod clock;
pub mod fxhash;
pub mod power;
pub mod queue;
pub mod resource;
pub mod schedule;
pub mod shards;
pub mod stats;
pub mod trace;

pub use arena::ScratchArena;
pub use clock::{Cycles, Frequency};
pub use fxhash::{FxHashMap, FxHashSet};
pub use power::{PowerFailure, WriteFate};
pub use resource::{BankSet, Completion, Resource};
pub use schedule::{SlotBankSet, SlotResource};
pub use shards::EpisodeShards;
pub use stats::{Histogram, Stats};
pub use trace::{
    chrome_trace_json, critical_path, resource_usage, CriticalPathShare, CriticalPathSummary,
    MemorySink, NullSink, Probe, ResourceUsage, TraceEvent, TraceSink,
};
