//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The interned [`Stats`](crate::Stats) registry and the NVM device's
//! page table hash short strings and block addresses millions of times
//! per episode; SipHash's per-call overhead is measurable there and its
//! DoS resistance buys nothing against our own workload. This is the
//! classic Fx multiply-rotate hash (as popularized by the rustc
//! codebase): one rotate, one XOR and one multiply per word.
//!
//! Determinism matters more than quality here: the hash has no random
//! seed, so iteration-order-independent consumers get identical results
//! across runs and platforms.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The golden-ratio multiplier (2^64 / φ, forced odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The Fx multiply-rotate hasher. One word of state; each input word
/// costs a rotate, an XOR and a multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the length in so "a" and "a\0" (as byte strings)
            // cannot collide through zero padding alone.
            word[7] = tail.len() as u8;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&"mem.read.data"), hash_of(&"mem.read.data"));
        assert_eq!(hash_of(&0x4000u64), hash_of(&0x4000u64));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of(&"mem.read.data"), hash_of(&"mem.read.mac"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"a\0"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(64);
        assert!(s.contains(&64));
        assert!(!s.contains(&128));
    }

    #[test]
    fn long_keys_cover_the_chunked_path() {
        let long = "a".repeat(1000);
        let mut other = "a".repeat(999);
        other.push('b');
        assert_ne!(hash_of(&long), hash_of(&other));
        assert_eq!(hash_of(&long), hash_of(&"a".repeat(1000)));
    }
}
