//! Osiris-style disaster recovery (Ye et al., MICRO'18 — the paper's
//! §II-C prior work): reconstructing lost encryption counters from data
//! MACs.
//!
//! The lazy baseline's recoverability normally comes from the
//! Anubis-style shadow flush performed during the drain. If that shadow
//! is lost or was never written (a true disaster: the battery died
//! mid-drain, the shadow region failed), the stored counters lag their
//! true values by however many bumps were still cached — normally
//! unrecoverable.
//!
//! With the **stop-loss** discipline enabled
//! ([`MetadataEngine::with_osiris`](horus_metadata::MetadataEngine::with_osiris)),
//! every counter is persisted whenever it crosses a multiple of `K`, so
//! the true counter always lies in `[stored, stored + K)` — and because
//! each data block's MAC binds its ciphertext, address *and* counter,
//! the recovery can simply try the candidates against the stored MAC.
//! Afterwards the Merkle tree is rebuilt bottom-up from the repaired
//! counters (the Triad-NVM-style reconstruction Anubis was designed to
//! avoid — slow, but it turns a data-loss event into downtime).

use crate::recovery::RecoveryError;
use crate::system::SecureEpdSystem;
use horus_crypto::Mac64;
use horus_metadata::{CounterBlock, IntegrityError};
use horus_nvm::Region;
use horus_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Measurements of one Osiris disaster recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsirisReport {
    /// Data blocks scanned.
    pub blocks_scanned: u64,
    /// Counters whose stored value lagged and was repaired.
    pub counters_repaired: u64,
    /// Candidate-MAC trials performed.
    pub mac_trials: u64,
    /// Tree nodes rewritten during the rebuild.
    pub rebuild_writes: u64,
    /// Recovery time in seconds.
    pub seconds: f64,
}

impl SecureEpdSystem {
    /// Drops the metadata caches *without any flush* — the disaster this
    /// module recovers from (battery died before the metadata flush).
    /// The cache hierarchy is lost too.
    pub fn simulate_metadata_loss(&mut self) {
        self.hierarchy.clear();
        self.engine.clear_caches_on_power_loss();
        self.episode = None;
        self.platform.reset_timing();
        self.clock = Cycles::ZERO;
    }

    /// Reconstructs lost counters from data MACs and rebuilds the Merkle
    /// tree (see the module docs). Requires the engine's Osiris
    /// stop-loss discipline to have been active while the lost updates
    /// were made.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Metadata`] if some block's true counter cannot
    /// be found within the stop-loss window (its MAC matches no
    /// candidate — either tampering, or the discipline was not active).
    ///
    /// # Panics
    ///
    /// Panics if the engine has no stop-loss configured.
    pub fn osiris_disaster_recovery(&mut self) -> Result<OsirisReport, RecoveryError> {
        let k = self
            .engine
            .osiris_stop_loss()
            .expect("Osiris recovery requires the stop-loss discipline");
        self.platform.reset_timing();
        let mut report = OsirisReport {
            blocks_scanned: 0,
            counters_repaired: 0,
            mac_trials: 0,
            rebuild_writes: 0,
            seconds: 0.0,
        };
        let mut t = Cycles::ZERO;

        // Pass 1: scan every written data block, find its true counter.
        let data_addrs: Vec<u64> = self
            .platform
            .nvm
            .device()
            .written_addrs_sorted()
            .into_iter()
            .filter(|a| self.map.region_of(*a) == Region::Data)
            .collect();
        for addr in data_addrs {
            report.blocks_scanned += 1;
            let (ct, c1) = self.platform.nvm.read(addr, "osiris_scan", t);
            let cb_addr = self.map.counter_block_addr(addr);
            let (cb_bytes, c2) = self.platform.nvm.read(cb_addr, "osiris_scan", c1.done);
            let mb_addr = self.map.mac_block_addr(addr);
            let (mb, c3) = self.platform.nvm.read(mb_addr, "osiris_scan", c2.done);
            t = c3.done;
            let slot = self.map.counter_slot(addr);
            let mac_slot = self.map.mac_slot(addr);
            let mut stored_mac = [0u8; 8];
            stored_mac.copy_from_slice(&mb[mac_slot * 8..(mac_slot + 1) * 8]);
            let stored_mac = Mac64(stored_mac);

            let mut cb = CounterBlock::from_block(&cb_bytes);
            let stored_counter = cb.counter(slot);
            // The true counter lies within [stored, stored + k].
            let mut found = None;
            for candidate in stored_counter..=stored_counter + k {
                report.mac_trials += 1;
                let mc = self.platform.mac_op("osiris_trial", t);
                t = mc.done;
                let mac = self
                    .data_cmac
                    .mac64(&crate::chv::entry_mac_input(&ct, addr, candidate));
                if mac == stored_mac {
                    found = Some(candidate);
                    break;
                }
            }
            let Some(true_counter) = found else {
                return Err(RecoveryError::Metadata(IntegrityError {
                    addr,
                    what: "counter (no candidate matched within the stop-loss window)",
                }));
            };
            if true_counter != stored_counter {
                report.counters_repaired += 1;
                // Patch the minor counter: the major part cannot lag
                // (overflows force a write-through).
                let major = cb.major();
                let minor = (true_counter - (major << 7)) as u8;
                for _ in cb.minor(slot)..minor {
                    cb.increment(slot);
                }
                let c = self
                    .platform
                    .nvm
                    .write(cb_addr, cb.to_block(), "osiris_repair", t);
                t = c.done;
            }
        }

        // Pass 2: rebuild the tree bottom-up from the repaired counters
        // (Triad-NVM-style full reconstruction).
        t = self.rebuild_tree_from_counters(t, &mut report.rebuild_writes);

        let cycles = self.platform.busy_until().max(t);
        report.seconds = self.config.nvm.frequency.cycles_to_seconds(cycles);
        Ok(report)
    }

    /// Recomputes every Merkle-tree node from the stored counter blocks,
    /// writes the changed nodes, and installs the new root on-chip.
    fn rebuild_tree_from_counters(&mut self, mut t: Cycles, writes: &mut u64) -> Cycles {
        let map = self.map.clone();
        let bmt = self.engine.bmt();
        let mut macs: Vec<Mac64> = Vec::with_capacity(map.counter_blocks() as usize);
        let default_counter_mac = bmt.node_mac(&[0u8; 64]);
        for i in 0..map.counter_blocks() {
            let addr = map.counter_block_addr(0) + i * 64;
            if self.platform.nvm.device().is_written(addr) {
                let bytes = self.platform.nvm.device().read_block(addr);
                macs.push(self.engine.bmt().node_mac(&bytes));
            } else {
                macs.push(default_counter_mac);
            }
        }
        let mut root = Mac64::ZERO;
        for level in 0..self.engine.bmt().levels() {
            let nodes = map.bmt_level_nodes(level);
            let mut next = Vec::with_capacity(nodes as usize);
            for idx in 0..nodes {
                let mut node = [0u8; 64];
                for slot in 0..8usize {
                    if let Some(m) = macs.get(idx as usize * 8 + slot) {
                        node[slot * 8..(slot + 1) * 8].copy_from_slice(&m.0);
                    }
                }
                let addr = map.bmt_node_addr(level, idx);
                let changed = !self.platform.nvm.device().is_written(addr)
                    || self.platform.nvm.device().read_block(addr) != node;
                // Only nodes covering live state differ from defaults;
                // write those (counting the rebuild traffic).
                if changed && node != self.engine.bmt().default_node(level) {
                    let c = self.platform.nvm.write(addr, node, "tree_rebuild", t);
                    t = c.done;
                    *writes += 1;
                } else if changed {
                    // Reverting to the default: store it explicitly so
                    // stale bytes cannot linger.
                    let c = self.platform.nvm.write(addr, node, "tree_rebuild", t);
                    t = c.done;
                    *writes += 1;
                }
                let mc = self.platform.mac_op("tree_rebuild", t);
                t = mc.done;
                next.push(self.engine.bmt().node_mac(&node));
            }
            if nodes == 1 {
                root = next[0];
            }
            macs = next;
        }
        self.engine.install_rebuilt_root(root);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn osiris_system(stop_loss: u64) -> SecureEpdSystem {
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        sys.enable_osiris(stop_loss);
        sys
    }

    /// Push writes through the secure path so both data and (stale)
    /// counters are in NVM, with fresh counter state only in the cache.
    /// 200 distinct lines overflow the 88-line test hierarchy, so every
    /// round forces write-backs.
    const LINES: u64 = 200;

    fn hammer(sys: &mut SecureEpdSystem, rounds: u8) {
        for round in 0..rounds {
            for i in 0..LINES {
                sys.write(i * 16448, [round.wrapping_add(i as u8); 64])
                    .expect("write");
            }
        }
    }

    #[test]
    fn disaster_without_stop_loss_is_unrecoverable() {
        // A hot block whose counter block never leaves the cache: with
        // the discipline off, its stored counter stays at 0 while the
        // true counter races ahead of any stop-loss window.
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        sys.disable_osiris_for_test();
        let mut t = horus_sim::Cycles::ZERO;
        for round in 0..10u8 {
            t = sys.secure_writeback(0, [round; 64], t).expect("writeback");
        }
        // Machinery present at recovery time, but the damage is done.
        sys.enable_osiris(4);
        sys.simulate_metadata_loss();
        let err = sys
            .osiris_disaster_recovery()
            .expect_err("gap exceeds the window");
        assert!(matches!(err, RecoveryError::Metadata(_)), "{err:?}");
    }

    #[test]
    fn disaster_recovery_repairs_counters_and_data_verifies() {
        let mut sys = osiris_system(4);
        hammer(&mut sys, 11);
        // Push every dirty line to NVM through the secure path: the data
        // (and its Osiris-colocated MAC) land in NVM with the freshest
        // counters, while the counter blocks themselves stay cached —
        // exactly the lag the disaster then exposes.
        let dirty = sys.hierarchy().drain_order();
        let mut t = horus_sim::Cycles::ZERO;
        for (addr, data) in &dirty {
            t = sys.secure_writeback(*addr, *data, t).expect("writeback");
        }
        let expected: Vec<(u64, [u8; 64])> = (0..LINES)
            .map(|i| (i * 16448, [(10u8).wrapping_add(i as u8); 64]))
            .collect();
        sys.simulate_metadata_loss();
        let report = sys.osiris_disaster_recovery().expect("recoverable");
        assert!(
            report.blocks_scanned >= 100,
            "scanned {}",
            report.blocks_scanned
        );
        assert!(report.mac_trials >= report.blocks_scanned);
        assert!(report.rebuild_writes > 0);
        // Every block now reads back through full verification.
        for (addr, data) in expected {
            assert_eq!(sys.read(addr).expect("verified"), data, "addr {addr:#x}");
        }
    }

    #[test]
    fn recovery_is_idempotent_when_nothing_lags() {
        let mut sys = osiris_system(1); // stop-loss 1: every bump persists
        hammer(&mut sys, 3);
        sys.simulate_metadata_loss();
        let report = sys.osiris_disaster_recovery().expect("recoverable");
        assert_eq!(report.counters_repaired, 0, "stop-loss 1 never lags");
    }
}
