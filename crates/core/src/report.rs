//! Measurement reports produced by drains and recoveries.

use horus_sim::{CriticalPathSummary, ResourceUsage, Stats};
use serde::{Deserialize, Serialize};

/// Everything measured about one draining episode — the raw material for
/// the paper's Figures 6 and 11–13 and Tables II–III.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DrainReport {
    /// The drain scheme, as a display string (`"Base-LU"` etc.).
    pub scheme: String,
    /// Dirty hierarchy blocks flushed.
    pub flushed_blocks: u64,
    /// Metadata-cache blocks flushed (via the CHV for Horus, in place or
    /// to the shadow region for the baselines).
    pub metadata_blocks: u64,
    /// Draining time in core cycles — the quantity the EPD hold-up
    /// budget must cover.
    pub cycles: u64,
    /// Draining time in seconds.
    pub seconds: f64,
    /// Total NVM reads during the drain.
    pub reads: u64,
    /// Total NVM writes during the drain.
    pub writes: u64,
    /// Total MAC computations during the drain.
    pub mac_ops: u64,
    /// Total one-time pads generated during the drain.
    pub otp_ops: u64,
    /// The full counter breakdown (`mem.read.*`, `mem.write.*`,
    /// `macop.*`, `aesop.*`).
    pub stats: Stats,
    /// Per-resource busy-cycle utilization and queueing-delay summary.
    /// Present only when the system ran with a probe enabled; absent
    /// from serialized form otherwise, so unprobed reports are
    /// byte-identical to pre-probe output.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub utilization: Option<Vec<ResourceUsage>>,
    /// Critical-path attribution of the drain: which resource class
    /// (PCM banks, AES, hash engine) bounds the episode. Present only
    /// when probed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub critical_path: Option<CriticalPathSummary>,
}

impl DrainReport {
    /// Total memory requests (reads + writes) — the paper's Figure 6 /
    /// Figure 14 metric.
    #[must_use]
    pub fn memory_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Memory writes grouped into the paper's Figure 12 categories:
    /// `(data, metadata evictions, CHV MAC+address, metadata flush)`.
    #[must_use]
    pub fn write_breakdown(&self) -> WriteBreakdown {
        let s = &self.stats;
        WriteBreakdown {
            data: s.get("mem.write.data") + s.get("mem.write.chv_data"),
            metadata_evictions: s.get("mem.write.counter_evict")
                + s.get("mem.write.tree_evict")
                + s.get("mem.write.mac_evict"),
            chv_protection: s.get("mem.write.chv_mac") + s.get("mem.write.chv_addr"),
            metadata_flush: s.get("mem.write.meta_flush")
                + s.get("mem.write.shadow")
                + s.get("mem.write.chv_meta"),
        }
    }

    /// MAC computations grouped into the paper's Figure 13 categories:
    /// `(verification, tree update, data MACs, tree/cache protection)`.
    #[must_use]
    pub fn mac_breakdown(&self) -> MacBreakdown {
        let s = &self.stats;
        MacBreakdown {
            verify: s.get("macop.verify_counter") + s.get("macop.verify_tree"),
            tree_update: s.get("macop.update_tree"),
            data: s.get("macop.data_mac") + s.get("macop.chv_entry"),
            protect: s.get("macop.small_tree") + s.get("macop.chv_l2"),
        }
    }
}

/// The Figure 12 write categories.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct WriteBreakdown {
    /// Flushed data blocks (in place or into the CHV).
    pub data: u64,
    /// Dirty metadata blocks evicted by drain-time security operations.
    pub metadata_evictions: u64,
    /// CHV MAC and address blocks.
    pub chv_protection: u64,
    /// The final metadata-cache flush.
    pub metadata_flush: u64,
}

impl WriteBreakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data + self.metadata_evictions + self.chv_protection + self.metadata_flush
    }
}

/// The Figure 13 MAC-computation categories.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct MacBreakdown {
    /// Verification of counters and tree nodes fetched from NVM.
    pub verify: u64,
    /// Merkle-tree updates (eager path updates, lazy eviction updates).
    pub tree_update: u64,
    /// MACs over the flushed data blocks themselves.
    pub data: u64,
    /// Protection of the flushed metadata / second-level CHV MACs.
    pub protect: u64,
}

impl MacBreakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.verify + self.tree_update + self.data + self.protect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdowns_partition_reasonably() {
        let mut stats = Stats::new();
        stats.add("mem.write.data", 10);
        stats.add("mem.write.chv_mac", 2);
        stats.add("mem.write.counter_evict", 3);
        stats.add("mem.write.meta_flush", 1);
        stats.add("macop.verify_tree", 5);
        stats.add("macop.chv_entry", 7);
        let r = DrainReport {
            scheme: "test".into(),
            flushed_blocks: 10,
            metadata_blocks: 1,
            cycles: 100,
            seconds: 1e-6,
            reads: 4,
            writes: 16,
            mac_ops: 12,
            otp_ops: 10,
            stats,
            utilization: None,
            critical_path: None,
        };
        assert_eq!(r.memory_requests(), 20);
        let wb = r.write_breakdown();
        assert_eq!(wb.data, 10);
        assert_eq!(wb.metadata_evictions, 3);
        assert_eq!(wb.chv_protection, 2);
        assert_eq!(wb.metadata_flush, 1);
        assert_eq!(wb.total(), 16);
        let mb = r.mac_breakdown();
        assert_eq!(mb.verify, 5);
        assert_eq!(mb.data, 7);
        assert_eq!(mb.total(), 12);
    }
}
