//! Recovery after power returns (paper §IV-C.3).
//!
//! For a Horus episode, the CHV is read back, every entry is integrity-
//! verified (MAC over ciphertext + original address + drain-counter
//! value) and decrypted, and the blocks are re-installed: data blocks
//! into the LLC in dirty state, drained metadata blocks into their
//! metadata caches. The eDC register is cleared at the end, arming the
//! next episode.
//!
//! Baseline episodes recover too: Base-EU left memory consistent with
//! the eager root (nothing to do); Base-LU restores its metadata caches
//! from the shadow region and re-verifies the small tree.
//!
//! Reads are modelled as a serial chain (recovery firmware walking the
//! vault), matching the paper's Figure 16 estimation method.

use crate::chv::ChvReader;
use crate::drain::DrainScheme;
use crate::system::SecureEpdSystem;
use horus_metadata::IntegrityError;
use horus_nvm::Region;
use horus_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Why a recovery failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// No unrecovered draining episode exists.
    NoEpisode,
    /// A CHV entry (or DLM group) failed verification: the vault was
    /// tampered with, spliced, replayed, or truncated.
    ChvIntegrity {
        /// The episode position (block index) that failed.
        position: u64,
    },
    /// Metadata verification failed while restoring state.
    Metadata(IntegrityError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoEpisode => write!(f, "no draining episode to recover"),
            RecoveryError::ChvIntegrity { position } => {
                write!(f, "CHV verification failed at episode position {position}")
            }
            RecoveryError::Metadata(e) => write!(f, "metadata recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Where recovered data blocks go (paper §IV-C.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RecoveryMode {
    /// Place recovered blocks back into the LLC in dirty state — the
    /// paper's default for inclusive LLCs ("we opt for the first
    /// option").
    #[default]
    RefillLlc,
    /// Write recovered blocks back to their original memory locations
    /// through the run-time secure path (counter bump, MAC, tree update)
    /// — the paper's lower-complexity option for non-inclusive LLCs.
    WriteThrough,
}

impl std::fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryMode::RefillLlc => write!(f, "refill-llc"),
            RecoveryMode::WriteThrough => write!(f, "write-through"),
        }
    }
}

/// Measurements of one recovery.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RecoveryReport {
    /// The recovered scheme's name.
    pub scheme: String,
    /// Recovery time in cycles.
    pub cycles: u64,
    /// Recovery time in seconds (the paper's Figure 16 metric).
    pub seconds: f64,
    /// Blocks restored into the hierarchy / metadata caches.
    pub restored_blocks: u64,
    /// NVM reads issued.
    pub reads: u64,
    /// MAC computations issued.
    pub mac_ops: u64,
}

impl SecureEpdSystem {
    /// Recovers the system from the most recent draining episode, using
    /// the default [`RecoveryMode::RefillLlc`].
    ///
    /// # Errors
    ///
    /// See [`RecoveryError`]; in particular any tampering with the CHV
    /// between the drain and the recovery is detected here.
    pub fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        self.recover_with(RecoveryMode::RefillLlc)
    }

    /// Recovers the system from the most recent draining episode with an
    /// explicit placement mode for data blocks.
    ///
    /// # Errors
    ///
    /// See [`RecoveryError`].
    pub fn recover_with(&mut self, mode: RecoveryMode) -> Result<RecoveryReport, RecoveryError> {
        let ep = self.episode.ok_or(RecoveryError::NoEpisode)?;
        self.platform.reset_timing();
        self.clock = Cycles::ZERO;
        let mut restored = 0u64;

        match ep.scheme {
            DrainScheme::NonSecure | DrainScheme::BaseEager => {
                // Memory already holds the complete, (for Base-EU)
                // verifiable state; nothing to restore.
            }
            DrainScheme::BaseLazy => {
                let (n, _) = self
                    .engine
                    .recover_from_shadow(&mut self.platform, Cycles::ZERO)
                    .map_err(RecoveryError::Metadata)?;
                restored = n;
            }
            DrainScheme::HorusSlm | DrainScheme::HorusDlm => {
                restored = self.recover_horus(ep.scheme, ep.blocks, mode)?;
                self.counters.clear_ephemeral();
            }
        }

        self.episode = None;
        let cycles = self.platform.busy_until();
        if self.platform.probe_enabled() {
            self.platform.record_phase(
                &format!("recovery.{}", ep.scheme.name()),
                Cycles::ZERO,
                cycles,
            );
            self.episode_trace = Some(self.platform.take_trace());
        }
        Ok(RecoveryReport {
            scheme: ep.scheme.name().to_owned(),
            cycles: cycles.0,
            seconds: self.config.nvm.frequency.cycles_to_seconds(cycles),
            restored_blocks: restored,
            reads: self.platform.nvm.total_reads(),
            mac_ops: self.platform.total_mac_ops(),
        })
    }

    fn recover_horus(
        &mut self,
        scheme: DrainScheme,
        n: u64,
        mode: RecoveryMode,
    ) -> Result<u64, RecoveryError> {
        let layout = self.chv_layout().expect("Horus episode has a layout");
        let reader = ChvReader::new(layout, &self.config.chv_key(), &self.config.chv_mac_key());
        // DC value for episode position i: DC - eDC + i + 1.
        let dc_base = self.counters.dc() - self.counters.edc() + 1;
        let mut t = Cycles::ZERO;
        let mut entries = Vec::with_capacity(n as usize);

        let mut base = 0u64;
        // DLM: one MAC block serves a whole 64-entry supergroup; keep the
        // current one in a register across groups.
        let mut mac_reg: Option<(u64, horus_nvm::Block)> = None;
        while base < n {
            let len = (n - base).min(8) as usize;
            let (es, rt) = match scheme {
                DrainScheme::HorusSlm => {
                    reader.read_group_slm(&mut self.platform, base, len, move |i| dc_base + i, t)
                }
                DrainScheme::HorusDlm => {
                    let mac_addr = reader.layout().mac_block_addr(base);
                    if mac_reg.map(|(a, _)| a) != Some(mac_addr) {
                        let (b, c) = self.platform.nvm.read(mac_addr, "chv_mac", t);
                        t = c.done;
                        mac_reg = Some((mac_addr, b));
                    }
                    let preloaded = mac_reg.map(|(_, b)| b);
                    reader.read_group_dlm_with_mac(
                        &mut self.platform,
                        base,
                        len,
                        move |i| dc_base + i,
                        preloaded,
                        t,
                    )
                }
                _ => unreachable!("recover_horus called for a non-Horus scheme"),
            };
            t = rt;
            entries.extend(es.ok_or(RecoveryError::ChvIntegrity { position: base })?);
            base += 8;
        }

        let restored = entries.len() as u64;
        // Restore the metadata-cache contents before any data block: a
        // data restore can overflow an LLC set and push the victim
        // through the secure write path, which must see the *pre-crash*
        // metadata state — parts of which (dirty tree nodes, counters)
        // exist only in the vault until re-installed.
        entries.sort_by_key(|e| match self.map.region_of(e.orig_addr) {
            Region::Counter | Region::Mac | Region::Bmt(_) => 0,
            _ => 1,
        });
        for e in entries {
            match self.map.region_of(e.orig_addr) {
                Region::Data => match mode {
                    RecoveryMode::RefillLlc => {
                        if let Some(victim) = self.hierarchy.restore_dirty(e.orig_addr, e.data) {
                            // Recovery overflowed an LLC set: push the
                            // victim through the normal secure write path.
                            t = self
                                .secure_writeback(victim.addr, victim.data, t)
                                .map_err(RecoveryError::Metadata)?;
                        }
                    }
                    RecoveryMode::WriteThrough => {
                        // Treat the recovered block as a normal run-time
                        // write to its original location (§IV-C.3's
                        // second option): counters, MACs and the main
                        // tree absorb it immediately.
                        t = self
                            .secure_writeback(e.orig_addr, e.data, t)
                            .map_err(RecoveryError::Metadata)?;
                    }
                },
                Region::Counter | Region::Mac | Region::Bmt(_) => {
                    t = self
                        .engine
                        .restore_block(&mut self.platform, e.orig_addr, e.data, t)
                        .map_err(RecoveryError::Metadata)?;
                }
                other => {
                    // A verified CHV entry can only name data or metadata
                    // addresses; anything else means the writer was
                    // misused.
                    panic!("CHV entry for unexpected region {other:?}");
                }
            }
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::system::SecureEpdSystem;

    fn filled(scheme: DrainScheme) -> SecureEpdSystem {
        let mut s = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
        for i in 0..48u64 {
            s.write(i * 16448, [(i as u8).wrapping_add(1); 64])
                .expect("ok");
        }
        s
    }

    #[test]
    fn recover_without_episode_errors() {
        let mut s = SecureEpdSystem::new(SystemConfig::small_test());
        assert_eq!(s.recover().unwrap_err(), RecoveryError::NoEpisode);
    }

    #[test]
    fn horus_slm_drain_recover_roundtrip() {
        let mut s = filled(DrainScheme::HorusSlm);
        let pre: Vec<(u64, [u8; 64])> = s.hierarchy().drain_order();
        let dr = s.crash_and_drain(DrainScheme::HorusSlm);
        let rec = s.recover().expect("verifies");
        assert_eq!(rec.restored_blocks, dr.flushed_blocks + dr.metadata_blocks);
        // Every pre-crash dirty line is back (possibly spilled to NVM by
        // set-overflow, where the read path finds it too).
        for (addr, data) in pre {
            assert_eq!(s.read(addr).expect("verifies"), data, "addr {addr:#x}");
        }
        assert_eq!(s.drain_counters().edc(), 0, "eDC cleared by recovery");
    }

    #[test]
    fn horus_dlm_drain_recover_roundtrip() {
        let mut s = filled(DrainScheme::HorusDlm);
        let pre = s.hierarchy().drain_order();
        let dr = s.crash_and_drain(DrainScheme::HorusDlm);
        let rec = s.recover().expect("verifies");
        assert_eq!(rec.restored_blocks, dr.flushed_blocks + dr.metadata_blocks);
        for (addr, data) in pre {
            assert_eq!(s.read(addr).expect("verifies"), data);
        }
    }

    #[test]
    fn base_lazy_recovers_metadata_from_shadow() {
        let mut s = filled(DrainScheme::BaseLazy);
        let dr = s.crash_and_drain(DrainScheme::BaseLazy);
        assert!(dr.metadata_blocks > 0);
        let rec = s.recover().expect("shadow verifies");
        assert_eq!(rec.restored_blocks, dr.metadata_blocks);
        assert!(
            !s.metadata().counter_cache().is_empty(),
            "caches repopulated"
        );
    }

    #[test]
    fn base_eager_recovery_is_trivial() {
        let mut s = filled(DrainScheme::BaseEager);
        let _ = s.crash_and_drain(DrainScheme::BaseEager);
        let rec = s.recover().expect("ok");
        assert_eq!(rec.restored_blocks, 0);
        assert_eq!(rec.reads, 0);
    }

    #[test]
    fn baseline_data_is_readable_after_recovery() {
        // After a baseline drain + recovery, the data lives encrypted in
        // NVM and must read back through the verified path.
        let mut s = filled(DrainScheme::BaseEager);
        let pre = s.hierarchy().drain_order();
        let _ = s.crash_and_drain(DrainScheme::BaseEager);
        let _ = s.recover().expect("ok");
        for (addr, data) in pre {
            assert_eq!(s.read(addr).expect("verifies"), data);
        }
    }

    #[test]
    fn write_through_recovery_lands_in_memory_not_llc() {
        let mut s = filled(DrainScheme::HorusSlm);
        let pre = s.hierarchy().drain_order();
        s.crash_and_drain(DrainScheme::HorusSlm);
        let rec = s
            .recover_with(RecoveryMode::WriteThrough)
            .expect("verifies");
        assert!(rec.restored_blocks > 0);
        // Nothing was refilled into the hierarchy…
        assert_eq!(s.hierarchy().dirty_unique(), 0);
        // …but every line reads back through the verified memory path.
        for (addr, data) in pre {
            assert!(!s.hierarchy().llc().contains(addr));
            assert_eq!(s.read(addr).expect("verifies"), data);
        }
    }

    #[test]
    fn recovery_mode_default_and_display() {
        assert_eq!(RecoveryMode::default(), RecoveryMode::RefillLlc);
        assert_eq!(RecoveryMode::WriteThrough.to_string(), "write-through");
        assert_eq!(RecoveryMode::RefillLlc.to_string(), "refill-llc");
    }

    #[test]
    fn abandoned_episode_does_not_poison_the_next() {
        // Drain, do NOT recover (e.g. the vault was found tampered and
        // discarded), refill, drain again: the second vault must verify
        // with its own drain-counter positions.
        let mut s = filled(DrainScheme::HorusSlm);
        s.crash_and_drain(DrainScheme::HorusSlm);
        // Power returns but recovery is skipped; new activity, new crash.
        for i in 0..24u64 {
            s.write(i * 16448 + 128, [0xCD; 64]).expect("write");
        }
        let dr2 = s.crash_and_drain(DrainScheme::HorusSlm);
        let rec = s.recover().expect("second episode verifies on its own");
        assert_eq!(
            rec.restored_blocks,
            dr2.flushed_blocks + dr2.metadata_blocks
        );
        assert_eq!(s.read(128).expect("read"), [0xCD; 64]);
    }

    #[test]
    fn second_episode_works_after_recovery() {
        let mut s = filled(DrainScheme::HorusSlm);
        let _ = s.crash_and_drain(DrainScheme::HorusSlm);
        s.recover().expect("first recovery");
        // New run-time activity, second crash.
        for i in 0..16u64 {
            s.write(i * 16448 + 64, [0xEE; 64]).expect("ok");
        }
        let dr2 = s.crash_and_drain(DrainScheme::HorusSlm);
        assert!(dr2.flushed_blocks >= 16, "got {}", dr2.flushed_blocks);
        s.recover().expect("second recovery");
        assert_eq!(s.read(64).expect("ok"), [0xEE; 64]);
    }
}
