//! Horus: persistent security for extended-persistence-domain (EPD)
//! memory systems — the paper's core contribution (MICRO 2022).
//!
//! An EPD (Intel eADR-style) platform holds enough back-up power to flush
//! the entire cache hierarchy to NVM on a power failure. With secure
//! memory (counter-mode encryption + Bonsai Merkle Tree), doing that
//! flush through the *run-time* metadata path explodes the number of
//! memory operations — and hence the battery — by an order of magnitude
//! (§III). Horus instead streams the dirty hierarchy into a reserved
//! **cache hierarchy vault** (CHV) protected only by an on-chip monotonic
//! **drain counter** and sequential MACs, making the drain independent of
//! the main security metadata (§IV).
//!
//! The crate provides:
//!
//! * [`SystemConfig`] — the paper's Table I configuration, and knobs for
//!   every sweep in the evaluation;
//! * [`SecureEpdSystem`] — a functional secure memory controller with a
//!   run-time read/write path (encryption, MACs, tree updates);
//! * [`DrainScheme`] — the four evaluated drain schemes (`Base-LU`,
//!   `Base-EU`, `Horus-SLM`, `Horus-DLM`) plus the non-secure reference,
//!   each producing a [`DrainReport`] with the cycle/request/MAC
//!   breakdowns of Figures 6 and 11–13;
//! * recovery ([`SecureEpdSystem::recover`]) and an attacker toolkit
//!   ([`attack`]) showing that tampering, splicing, replay and truncation
//!   of the CHV are all detected (§IV-C.4).
//!
//! # Quickstart
//!
//! ```
//! use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
//!
//! // A small system so the doctest is fast.
//! let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
//! sys.write(0x0000, [1u8; 64]);
//! sys.write(0x4000, [2u8; 64]);
//! let report = sys.crash_and_drain(DrainScheme::HorusSlm);
//! assert!(report.flushed_blocks >= 2);
//! let rec = sys.recover().expect("CHV verifies");
//! assert_eq!(rec.restored_blocks, report.flushed_blocks);
//! assert_eq!(sys.read(0x0000).unwrap(), [1u8; 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod chv;
pub mod config;
pub mod counter_reg;
pub mod crash;
pub mod domain;
pub mod drain;
pub mod osiris;
pub mod recovery;
pub mod report;
pub mod system;

pub use chv::{ChvLayout, MacGranularity};
pub use config::SystemConfig;
pub use counter_reg::DrainCounters;
pub use crash::{
    run_crash_point, CrashPointReport, CrashRecovery, CrashSpec, CrashVerdict, InterruptedDrain,
    TornWriteModel,
};
pub use domain::{PersistStats, PersistenceDomain};
pub use drain::DrainScheme;
pub use osiris::OsirisReport;
pub use recovery::{RecoveryError, RecoveryMode, RecoveryReport};
pub use report::DrainReport;
pub use system::SecureEpdSystem;
