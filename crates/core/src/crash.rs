//! Crash-point fault injection: interrupt a drain at an arbitrary
//! cycle, reconstruct exactly the persistent state a real machine would
//! hold, run recovery against it, and classify the outcome.
//!
//! The drain engines in [`drain`](crate::drain) issue every NVM write
//! through the timed [`NvmSystem`](horus_nvm::NvmSystem), which applies
//! data functionally at issue time; the crash journal in `horus-nvm`
//! records each write's pre-image and bank service window so firing a
//! [`PowerFailure`] *rewinds* the device to the crash cycle: completed
//! writes stay, never-started writes vanish, and the one write per bank
//! caught mid-service is torn under a [`TornWriteModel`].
//!
//! On top of that functional rewind, this module freezes the *on-chip*
//! state to its crash-cycle value:
//!
//! * **Horus** — the persistent DC register holds the count of CHV
//!   pushes *issued* before the cut (the register increments at issue,
//!   not at write completion), and the persistent one-bit *drain-open*
//!   register records that the episode never finished. Recovery then
//!   salvages the longest verifiable CHV prefix and — because drain-open
//!   is set — reports the recovery as incomplete no matter how much it
//!   salvaged: lines that were never pushed are gone and the machine
//!   knows it. This is what makes Horus crash-*detectable* at every
//!   cycle: it can lose recent data to the outage window, but it never
//!   lies about having it.
//! * **Baselines** — Base-LU/EU have no such register (that is their
//!   documented vulnerability). Their on-chip metadata engine reverts to
//!   its pre-drain snapshot (the shadow-flush commit never happened) and
//!   its volatile caches are cleared by the power loss; recovery and
//!   subsequent reads see whatever NVM happens to hold.
//!
//! [`run_crash_point`] packages one full experiment: fill-drain-crash,
//! recover, read back every pre-crash dirty line, and return a
//! [`CrashVerdict`] — the row material for the crash matrix.

use crate::chv::ChvReader;
use crate::drain::DrainScheme;
use crate::recovery::{RecoveryError, RecoveryMode, RecoveryReport};
use crate::system::{Episode, SecureEpdSystem};
use horus_nvm::Region;
use horus_sim::{Cycles, PowerFailure};
use serde::{Deserialize, Serialize};

pub use horus_nvm::{CrashOutcome, TornWriteModel};

/// Where and how to cut the power during a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The cycle (from outage detection) the power fails at. A cut at or
    /// after the drain's planned completion leaves a completed episode.
    pub at: u64,
    /// What an interrupted in-flight NVM write leaves behind.
    pub model: TornWriteModel,
}

impl CrashSpec {
    /// A cut at `at` with the default [`TornWriteModel::Torn`] model.
    #[must_use]
    pub fn at(at: u64) -> Self {
        CrashSpec {
            at,
            model: TornWriteModel::default(),
        }
    }
}

/// What an interrupted drain left behind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptedDrain {
    /// The drained scheme's name.
    pub scheme: String,
    /// The crash cycle.
    pub at: u64,
    /// The cycle the drain would have completed at without the crash.
    pub planned_cycles: u64,
    /// Whether the cut landed at or after `planned_cycles` (the episode
    /// completed and the crash hit an idle machine).
    pub completed: bool,
    /// Horus only: CHV pushes issued before the cut — the frozen value
    /// of the ephemeral drain-counter register.
    pub issued_blocks: u64,
    /// Per-write fate accounting from the NVM crash journal.
    pub outcome: CrashOutcome,
}

/// The result of recovering from a (possibly interrupted) episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecovery {
    /// Whether the machine believes the episode was recovered in full.
    /// For an interrupted Horus drain this is *always* false — the
    /// drain-open register proves lines were lost even when every vault
    /// entry present verifies.
    pub complete: bool,
    /// CHV entries verified and restored (Horus), or the episode's block
    /// count for a complete recovery.
    pub verified_prefix: u64,
    /// The usual recovery measurements.
    pub report: RecoveryReport,
}

/// How one crash point ended, from the user's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashVerdict {
    /// Recovery succeeded and every pre-crash dirty line read back with
    /// its pre-crash contents.
    Recovered,
    /// The machine *knows* state was lost or damaged: recovery returned
    /// an error, or reported itself incomplete, or subsequent reads
    /// failed verification. Data may be gone, but no lie was told.
    Detected,
    /// The worst case: recovery claimed success, reads verified, and yet
    /// some line returned data that differs from its pre-crash contents.
    SilentCorruption,
}

impl std::fmt::Display for CrashVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashVerdict::Recovered => write!(f, "recovered"),
            CrashVerdict::Detected => write!(f, "detected"),
            CrashVerdict::SilentCorruption => write!(f, "SILENT-CORRUPTION"),
        }
    }
}

/// One row of the crash matrix: everything observed at one crash point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashPointReport {
    /// The drained scheme's name.
    pub scheme: String,
    /// The crash cycle.
    pub at: u64,
    /// The drain's uninterrupted completion cycle.
    pub planned_cycles: u64,
    /// Whether the drain had already completed when the cut landed.
    pub completed_drain: bool,
    /// The classification.
    pub verdict: CrashVerdict,
    /// Human-readable one-liner: what happened.
    pub detail: String,
    /// Journaled writes the cut caught mid-service.
    pub torn_writes: u64,
    /// Journaled writes the cut rewound entirely.
    pub lost_writes: u64,
    /// Journaled writes that persisted.
    pub durable_writes: u64,
    /// Blocks recovery restored.
    pub restored_blocks: u64,
    /// Pre-crash dirty lines that read back correctly.
    pub reads_matched: u64,
    /// Pre-crash dirty lines that read back *verified but wrong* — the
    /// silent-corruption count.
    pub reads_stale: u64,
    /// Pre-crash dirty lines whose read failed verification.
    pub reads_failed: u64,
}

impl SecureEpdSystem {
    /// Drains under `scheme` and cuts the power at `spec.at` cycles
    /// after outage detection, leaving the system in exactly the
    /// persistent state a real machine would hold: NVM rewound per the
    /// crash journal, volatile caches cleared, on-chip registers frozen
    /// at their crash-cycle values.
    ///
    /// A cut at or after the drain's completion cycle degenerates to
    /// [`crash_and_drain`](SecureEpdSystem::crash_and_drain) (every
    /// write durable, episode recorded as complete).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`crash_and_drain`](SecureEpdSystem::crash_and_drain).
    pub fn crash_and_drain_interrupted(
        &mut self,
        scheme: DrainScheme,
        spec: CrashSpec,
    ) -> InterruptedDrain {
        // On-chip snapshots taken at outage detection: what survives the
        // crash is the persistent registers' values *at the cut*, which
        // are reconstructed from these below.
        let counters_snapshot = self.counters;
        let engine_snapshot = (!scheme.is_horus()).then(|| self.engine.clone());

        self.platform.nvm.arm_crash_journal();
        let run = self.run_drain_loops(scheme);
        let planned = self.platform.busy_until();
        let completed = spec.at >= planned.0;
        let outcome = self
            .platform
            .nvm
            .fire_crash(PowerFailure::at(Cycles(spec.at)), spec.model);

        // Freeze the on-chip registers to their crash-cycle values.
        let issued = run
            .push_issue_cycles
            .iter()
            .filter(|c| c.0 < spec.at)
            .count() as u64;
        if scheme.is_horus() && !completed {
            // The DC register increments when a push is *issued*; pushes
            // after the cut never happened on a real machine.
            self.counters = counters_snapshot;
            self.counters.clear_ephemeral();
            for _ in 0..issued {
                self.counters.allocate();
            }
        }
        if let (Some(snap), false) = (engine_snapshot, completed) {
            // The baseline shadow-flush commit (root + shadow registers)
            // never happened; the engine's persistent registers revert.
            self.engine = snap;
        }

        // Power off: volatile state is lost regardless of scheme.
        self.hierarchy.clear();
        self.clear_metadata_caches();

        let chv_slot = run.chv_slot;
        if scheme.is_horus() {
            // The slot was consumed even if the episode never finished.
            self.episodes_drained += 1;
            self.drain_open = !completed;
        }
        self.episode = Some(Episode {
            scheme,
            // An interrupted Horus episode spans only the issued pushes;
            // recovery must not look past the frozen DC value.
            blocks: if scheme.is_horus() && !completed {
                issued
            } else {
                run.flushed + run.metadata_blocks
            },
            chv_slot,
        });

        InterruptedDrain {
            scheme: scheme.name().to_owned(),
            at: spec.at,
            planned_cycles: planned.0,
            completed,
            issued_blocks: if scheme.is_horus() { issued } else { 0 },
            outcome,
        }
    }

    /// Recovers from the most recent episode, interrupted or not.
    ///
    /// A complete episode delegates to
    /// [`recover_with`](SecureEpdSystem::recover_with). An interrupted
    /// Horus episode (drain-open register set) instead salvages the
    /// longest verifiable CHV prefix — verification failures past the
    /// prefix are *expected* there (torn or lost vault writes), not
    /// errors — and always reports `complete: false`.
    ///
    /// # Errors
    ///
    /// See [`RecoveryError`]; on the prefix path only metadata failures
    /// while re-installing verified entries surface as errors.
    pub fn recover_after_crash(
        &mut self,
        mode: RecoveryMode,
    ) -> Result<CrashRecovery, RecoveryError> {
        let ep = self.episode.ok_or(RecoveryError::NoEpisode)?;
        if !self.drain_open {
            let report = self.recover_with(mode)?;
            return Ok(CrashRecovery {
                complete: true,
                verified_prefix: ep.blocks,
                report,
            });
        }

        self.platform.reset_timing();
        self.clock = Cycles::ZERO;
        let verified = self.recover_horus_prefix(ep.scheme, ep.blocks, mode)?;
        self.counters.clear_ephemeral();
        self.drain_open = false;
        self.episode = None;

        let cycles = self.platform.busy_until();
        if self.platform.probe_enabled() {
            self.platform.record_phase(
                &format!("recovery.crash.{}", ep.scheme.name()),
                Cycles::ZERO,
                cycles,
            );
            self.episode_trace = Some(self.platform.take_trace());
        }
        Ok(CrashRecovery {
            // Never complete: the drain-open register proves dirty lines
            // existed that were never pushed (or never became durable).
            complete: false,
            verified_prefix: verified,
            report: RecoveryReport {
                scheme: ep.scheme.name().to_owned(),
                cycles: cycles.0,
                seconds: self.config.nvm.frequency.cycles_to_seconds(cycles),
                restored_blocks: verified,
                reads: self.platform.nvm.total_reads(),
                mac_ops: self.platform.total_mac_ops(),
            },
        })
    }

    /// Walks the vault like `recover_horus`, but stops at the first
    /// entry (SLM) or group (DLM) that fails verification instead of
    /// erroring, restoring everything before it.
    fn recover_horus_prefix(
        &mut self,
        scheme: DrainScheme,
        n: u64,
        mode: RecoveryMode,
    ) -> Result<u64, RecoveryError> {
        let layout = self.chv_layout().expect("Horus episode has a layout");
        let reader = ChvReader::new(layout, &self.config.chv_key(), &self.config.chv_mac_key());
        let dc_base = self.counters.dc() - self.counters.edc() + 1;
        let mut t = Cycles::ZERO;
        let mut entries = Vec::with_capacity(n as usize);

        let mut base = 0u64;
        let mut mac_reg: Option<(u64, horus_nvm::Block)> = None;
        'walk: while base < n {
            let len = (n - base).min(8) as usize;
            match scheme {
                DrainScheme::HorusSlm => {
                    let (es, rt) =
                        reader.read_group_slm(&mut self.platform, base, len, |i| dc_base + i, t);
                    t = rt;
                    match es {
                        Some(es) => entries.extend(es),
                        None => {
                            // The group MAC check is per-member for SLM,
                            // so a failing group has a salvageable
                            // within-group prefix: refine entry by entry.
                            for k in 0..len as u64 {
                                let (e, rt) = reader.read_entry_slm(
                                    &mut self.platform,
                                    base + k,
                                    dc_base + base + k,
                                    t,
                                );
                                t = rt;
                                match e {
                                    Some(e) => entries.push(e),
                                    None => break,
                                }
                            }
                            break 'walk;
                        }
                    }
                }
                DrainScheme::HorusDlm => {
                    // One MAC block serves a 64-entry supergroup; a torn
                    // or lost MAC block fails all its groups, so DLM
                    // salvage is group-granular by construction.
                    let mac_addr = reader.layout().mac_block_addr(base);
                    if mac_reg.map(|(a, _)| a) != Some(mac_addr) {
                        let (b, c) = self.platform.nvm.read(mac_addr, "chv_mac", t);
                        t = c.done;
                        mac_reg = Some((mac_addr, b));
                    }
                    let preloaded = mac_reg.map(|(_, b)| b);
                    let (es, rt) = reader.read_group_dlm_with_mac(
                        &mut self.platform,
                        base,
                        len,
                        |i| dc_base + i,
                        preloaded,
                        t,
                    );
                    t = rt;
                    match es {
                        Some(es) => entries.extend(es),
                        None => break 'walk,
                    }
                }
                _ => unreachable!("prefix recovery is Horus-only"),
            }
            base += 8;
        }

        let restored = entries.len() as u64;
        // Metadata entries first, for the same reason as recover_horus:
        // a data restore can overflow an LLC set and push the victim
        // through the secure write path.
        entries.sort_by_key(|e| match self.map.region_of(e.orig_addr) {
            Region::Counter | Region::Mac | Region::Bmt(_) => 0,
            _ => 1,
        });
        for e in entries {
            match self.map.region_of(e.orig_addr) {
                Region::Data => match mode {
                    RecoveryMode::RefillLlc => {
                        if let Some(victim) = self.hierarchy.restore_dirty(e.orig_addr, e.data) {
                            t = self
                                .secure_writeback(victim.addr, victim.data, t)
                                .map_err(RecoveryError::Metadata)?;
                        }
                    }
                    RecoveryMode::WriteThrough => {
                        t = self
                            .secure_writeback(e.orig_addr, e.data, t)
                            .map_err(RecoveryError::Metadata)?;
                    }
                },
                Region::Counter | Region::Mac | Region::Bmt(_) => {
                    t = self
                        .engine
                        .restore_block(&mut self.platform, e.orig_addr, e.data, t)
                        .map_err(RecoveryError::Metadata)?;
                }
                other => panic!("CHV entry for unexpected region {other:?}"),
            }
        }
        Ok(restored)
    }
}

/// The crash-matrix classification rule, applied to what recovery said
/// and what the read-back observed.
///
/// * Clean recovery and every read correct → [`CrashVerdict::Recovered`].
/// * Recovery errored, reported itself incomplete, or any read failed
///   verification → [`CrashVerdict::Detected`]: state was lost but the
///   machine (or its read path) said so.
/// * Recovery claimed completeness, nothing failed, and yet a read
///   returned verified-but-wrong data →
///   [`CrashVerdict::SilentCorruption`].
#[must_use]
pub fn classify(rec_failed: bool, complete: bool, stale: u64, failed: u64) -> CrashVerdict {
    if !rec_failed && stale == 0 && failed == 0 {
        CrashVerdict::Recovered
    } else if rec_failed || !complete {
        CrashVerdict::Detected
    } else if stale > 0 {
        CrashVerdict::SilentCorruption
    } else {
        CrashVerdict::Detected
    }
}

/// Runs one complete crash-point experiment on a prepared (dirty)
/// system: drain under `scheme`, cut the power at `spec.at`, recover,
/// then read back every pre-crash dirty line and classify.
///
/// The verdict logic is the contract the crash sweep enforces:
///
/// * every line reads back correctly after a clean recovery →
///   [`CrashVerdict::Recovered`];
/// * recovery errored, reported itself incomplete, or reads failed
///   verification → [`CrashVerdict::Detected`] (loss the machine knows
///   about);
/// * recovery claimed completeness and a read returned verified-but-
///   wrong data → [`CrashVerdict::SilentCorruption`].
///
/// # Panics
///
/// Panics if `scheme` is [`DrainScheme::NonSecure`], whose raw drain
/// path has no verified read-back to classify against.
pub fn run_crash_point(
    sys: &mut SecureEpdSystem,
    scheme: DrainScheme,
    spec: CrashSpec,
    mode: RecoveryMode,
) -> CrashPointReport {
    assert_ne!(
        scheme,
        DrainScheme::NonSecure,
        "crash points need a verified read path"
    );
    let pre = sys.hierarchy().drain_order();
    let dr = sys.crash_and_drain_interrupted(scheme, spec);
    let rec = sys.recover_after_crash(mode);

    let (rec_err, complete, restored) = match &rec {
        Ok(r) => (None, r.complete, r.report.restored_blocks),
        Err(e) => (Some(e.to_string()), false, 0),
    };

    let (mut matched, mut stale, mut failed) = (0u64, 0u64, 0u64);
    for (addr, data) in &pre {
        match sys.read(*addr) {
            Ok(b) if b == *data => matched += 1,
            Ok(_) => stale += 1,
            Err(_) => failed += 1,
        }
    }

    let verdict = classify(rec_err.is_some(), complete, stale, failed);

    let detail = match &rec_err {
        Some(e) => format!("recovery failed: {e}"),
        None => format!(
            "{} recovery, {restored} restored, reads {matched}/{stale}/{failed} ok/stale/failed",
            if complete { "complete" } else { "partial" },
        ),
    };

    CrashPointReport {
        scheme: dr.scheme,
        at: spec.at,
        planned_cycles: dr.planned_cycles,
        completed_drain: dr.completed,
        verdict,
        detail,
        torn_writes: dr.outcome.torn,
        lost_writes: dr.outcome.lost,
        durable_writes: dr.outcome.durable,
        restored_blocks: restored,
        reads_matched: matched,
        reads_stale: stale,
        reads_failed: failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn filled(scheme: DrainScheme) -> SecureEpdSystem {
        let mut s = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
        for i in 0..40u64 {
            s.write(i * 16448, [i as u8 + 1; 64]).expect("ok");
        }
        s
    }

    fn planned_cycles(scheme: DrainScheme) -> u64 {
        filled(scheme).crash_and_drain(scheme).cycles
    }

    #[test]
    fn cut_at_zero_loses_everything_but_is_detected() {
        let mut s = filled(DrainScheme::HorusSlm);
        let dr = s.crash_and_drain_interrupted(DrainScheme::HorusSlm, CrashSpec::at(0));
        assert!(!dr.completed);
        assert_eq!(dr.issued_blocks, 0);
        assert_eq!(dr.outcome.durable, 0);
        assert!(s.drain_open());
        let rec = s.recover_after_crash(RecoveryMode::RefillLlc).expect("ok");
        assert!(!rec.complete);
        assert_eq!(rec.verified_prefix, 0);
        assert!(!s.drain_open(), "recovery closes the register");
    }

    #[test]
    fn cut_after_planned_completion_recovers_fully() {
        let planned = planned_cycles(DrainScheme::HorusSlm);
        let mut s = filled(DrainScheme::HorusSlm);
        let r = run_crash_point(
            &mut s,
            DrainScheme::HorusSlm,
            CrashSpec::at(planned),
            RecoveryMode::RefillLlc,
        );
        assert!(r.completed_drain);
        assert_eq!(r.verdict, CrashVerdict::Recovered);
        assert_eq!(r.reads_stale, 0);
        assert_eq!(r.reads_failed, 0);
        assert_eq!(r.torn_writes, 0);
        assert_eq!(r.lost_writes, 0);
    }

    #[test]
    fn mid_drain_cut_freezes_the_drain_counter_at_issued_pushes() {
        let planned = planned_cycles(DrainScheme::HorusSlm);
        let mut s = filled(DrainScheme::HorusSlm);
        let dc_before = s.drain_counters().dc();
        let dr = s.crash_and_drain_interrupted(DrainScheme::HorusSlm, CrashSpec::at(planned / 2));
        assert!(!dr.completed);
        assert!(dr.issued_blocks > 0, "mid-drain cut catches issued pushes");
        assert_eq!(s.drain_counters().dc(), dc_before + dr.issued_blocks);
        assert_eq!(s.drain_counters().edc(), dr.issued_blocks);
    }

    #[test]
    fn horus_is_never_silently_corrupted_at_sampled_cuts() {
        for scheme in [DrainScheme::HorusSlm, DrainScheme::HorusDlm] {
            let planned = planned_cycles(scheme);
            for at in [
                0,
                planned / 7,
                planned / 3,
                planned / 2,
                planned * 3 / 4,
                planned - 1,
                planned,
            ] {
                let mut s = filled(scheme);
                let r = run_crash_point(&mut s, scheme, CrashSpec::at(at), RecoveryMode::RefillLlc);
                assert_ne!(
                    r.verdict,
                    CrashVerdict::SilentCorruption,
                    "{} at cycle {at}: {}",
                    scheme.name(),
                    r.detail
                );
            }
        }
    }

    #[test]
    fn mid_drain_horus_salvages_a_prefix() {
        let planned = planned_cycles(DrainScheme::HorusSlm);
        let mut s = filled(DrainScheme::HorusSlm);
        let r = run_crash_point(
            &mut s,
            DrainScheme::HorusSlm,
            CrashSpec::at(planned * 3 / 4),
            RecoveryMode::RefillLlc,
        );
        assert_eq!(r.verdict, CrashVerdict::Detected);
        assert!(
            r.restored_blocks > 0,
            "late cut leaves a verifiable prefix: {}",
            r.detail
        );
        assert!(r.reads_matched > 0);
    }

    #[test]
    fn baselines_lose_data_in_their_vulnerability_window() {
        // Every mid-drain cut is a loss for the baselines: Base-LU's
        // shadow flush never committed ("no flush recorded"), and
        // Base-EU's reverted root register no longer covers the writes
        // the drain managed to land. Both fail *loudly* under our
        // conservative register model — the window is data loss the
        // machine reports, with nothing salvaged. At the planned
        // completion cycle the window closes and the drain recovers.
        for scheme in [DrainScheme::BaseLazy, DrainScheme::BaseEager] {
            let planned = planned_cycles(scheme);
            for i in 1..8 {
                let mut s = filled(scheme);
                let r = run_crash_point(
                    &mut s,
                    scheme,
                    CrashSpec::at(planned * i / 8),
                    RecoveryMode::RefillLlc,
                );
                assert_eq!(
                    r.verdict,
                    CrashVerdict::Detected,
                    "{} at {i}/8: {}",
                    scheme.name(),
                    r.detail
                );
                assert_eq!(r.reads_matched, 0, "{} salvages nothing", scheme.name());
            }
            let mut s = filled(scheme);
            let r = run_crash_point(
                &mut s,
                scheme,
                CrashSpec::at(planned),
                RecoveryMode::RefillLlc,
            );
            assert_eq!(r.verdict, CrashVerdict::Recovered, "{}", r.detail);
        }
    }

    #[test]
    fn classifier_covers_all_verdicts() {
        // Recovery clean, reads clean.
        assert_eq!(classify(false, true, 0, 0), CrashVerdict::Recovered);
        // A partial (prefix) recovery with clean reads still counts as
        // recovered only by observation; with a stale read it must NOT
        // go silent, because the machine declared itself incomplete.
        assert_eq!(classify(false, false, 0, 0), CrashVerdict::Recovered);
        assert_eq!(classify(false, false, 3, 0), CrashVerdict::Detected);
        // Loud failures.
        assert_eq!(classify(true, false, 0, 0), CrashVerdict::Detected);
        assert_eq!(classify(false, true, 0, 2), CrashVerdict::Detected);
        // The one path that is silent: recovery claimed completeness,
        // every read verified, and data is wrong anyway.
        assert_eq!(classify(false, true, 1, 0), CrashVerdict::SilentCorruption);
    }

    #[test]
    fn crash_points_are_deterministic() {
        let planned = planned_cycles(DrainScheme::HorusDlm);
        let run = |at: u64| {
            let mut s = filled(DrainScheme::HorusDlm);
            run_crash_point(
                &mut s,
                DrainScheme::HorusDlm,
                CrashSpec::at(at),
                RecoveryMode::RefillLlc,
            )
        };
        for at in [planned / 4, planned / 2, planned - 1] {
            assert_eq!(run(at), run(at), "cut at {at}");
        }
    }

    #[test]
    fn interrupted_episode_does_not_poison_the_next() {
        let planned = planned_cycles(DrainScheme::HorusSlm);
        let mut s = filled(DrainScheme::HorusSlm);
        s.crash_and_drain_interrupted(DrainScheme::HorusSlm, CrashSpec::at(planned / 2));
        s.recover_after_crash(RecoveryMode::RefillLlc).expect("ok");
        // New activity, clean drain, clean recovery.
        for i in 0..16u64 {
            s.write(i * 16448 + 64, [0xAB; 64]).expect("ok");
        }
        let dr2 = s.crash_and_drain(DrainScheme::HorusSlm);
        assert!(dr2.flushed_blocks >= 16);
        s.recover().expect("second episode verifies");
        assert_eq!(s.read(64).expect("ok"), [0xAB; 64]);
    }

    #[test]
    fn stale_model_keeps_pre_images_and_still_detects() {
        let planned = planned_cycles(DrainScheme::HorusSlm);
        let mut s = filled(DrainScheme::HorusSlm);
        let spec = CrashSpec {
            at: planned / 2,
            model: TornWriteModel::Stale,
        };
        let r = run_crash_point(&mut s, DrainScheme::HorusSlm, spec, RecoveryMode::RefillLlc);
        assert_ne!(r.verdict, CrashVerdict::SilentCorruption, "{}", r.detail);
    }

    #[test]
    fn crash_spec_and_verdict_display() {
        assert_eq!(CrashSpec::at(42).model, TornWriteModel::Torn);
        assert_eq!(CrashVerdict::Recovered.to_string(), "recovered");
        assert_eq!(CrashVerdict::Detected.to_string(), "detected");
        assert_eq!(
            CrashVerdict::SilentCorruption.to_string(),
            "SILENT-CORRUPTION"
        );
    }
}
