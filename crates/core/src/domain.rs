//! Persistence-domain models: ADR, BBB, and EPD (paper §I, §II-A, §VI).
//!
//! The paper situates Horus in a design space of *where the persistence
//! boundary sits*:
//!
//! * **ADR** — only the memory controller's write-pending queue is
//!   battery-backed. A persistent store must push its line (and, in a
//!   secure system, all its security metadata) through the secure write
//!   path before it is durable — the slow path Dolos and friends
//!   optimize.
//! * **BBB** — a small battery-backed persist buffer near L1
//!   (Alshboul et al., HPCA'21). A store is durable the moment it enters
//!   the buffer; the buffer drains to NVM in the background, so persists
//!   are fast until the NVM write bandwidth saturates the buffer.
//! * **EPD** (eADR) — the whole cache hierarchy is battery-backed;
//!   a store is durable on arrival in L1. Free persists, but the
//!   emergency drain is huge — which is exactly the problem Horus
//!   attacks.
//!
//! [`SecureEpdSystem::persist`](crate::SecureEpdSystem::persist) gives
//! all three a uniform durable-store API so their run-time cost and
//! crash-time work can be compared (`repro-domains`).

use crate::system::SecureEpdSystem;
use horus_metadata::IntegrityError;
use horus_nvm::Block;
use horus_sim::Cycles;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Where the persistence boundary sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PersistenceDomain {
    /// Battery-backed WPQ only: persists complete when the secure write
    /// path finishes (data + metadata durable).
    AdrOnly,
    /// A battery-backed persist buffer of the given line capacity; the
    /// buffer drains to NVM in the background.
    Bbb {
        /// Buffer capacity in cache lines.
        buffer_lines: usize,
    },
    /// The whole cache hierarchy is battery-backed (eADR). The default.
    #[default]
    Epd,
}

impl std::fmt::Display for PersistenceDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistenceDomain::AdrOnly => write!(f, "ADR"),
            PersistenceDomain::Bbb { buffer_lines } => write!(f, "BBB({buffer_lines})"),
            PersistenceDomain::Epd => write!(f, "EPD"),
        }
    }
}

/// Run-time persist statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistStats {
    /// Durable stores issued.
    pub persists: u64,
    /// Persists that had to wait for persist-buffer capacity (BBB only).
    pub buffer_stalls: u64,
    /// Total cycles from issue to durability, summed over persists.
    pub total_latency_cycles: u64,
}

impl PersistStats {
    /// Mean cycles from store to durability.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.persists == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.persists as f64
        }
    }
}

/// The battery-backed persist buffer of the BBB domain.
///
/// Entries are inserted with the completion time of their (immediately
/// issued) background write-back; an insert into a full buffer waits for
/// the oldest write-back to finish.
#[derive(Debug, Clone)]
pub(crate) struct PersistBuffer {
    capacity: usize,
    inflight: VecDeque<Cycles>,
}

impl PersistBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "persist buffer must hold at least one line");
        Self {
            capacity,
            inflight: VecDeque::with_capacity(capacity),
        }
    }

    /// Frees completed entries as of `now`, then reports the time at
    /// which a slot is available (>= `now` if the buffer is full).
    fn slot_available(&mut self, now: Cycles) -> Cycles {
        while let Some(done) = self.inflight.front() {
            if *done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.capacity {
            now
        } else {
            *self.inflight.front().expect("full buffer is non-empty")
        }
    }

    fn push(&mut self, writeback_done: Cycles) {
        self.inflight.push_back(writeback_done);
    }

    /// The completion time of all outstanding write-backs (the BBB crash
    /// flush: the buffer is battery-backed, so this is the only work).
    pub(crate) fn drain_done(&self) -> Cycles {
        self.inflight.back().copied().unwrap_or(Cycles::ZERO)
    }

    pub(crate) fn occupancy(&self) -> usize {
        self.inflight.len()
    }

    pub(crate) fn clear(&mut self) {
        self.inflight.clear();
    }
}

impl SecureEpdSystem {
    /// A *durable* store: completes only when the data is inside the
    /// configured persistence domain.
    ///
    /// * `Epd` — equivalent to [`write`](Self::write): arrival in the
    ///   (battery-backed) hierarchy is durability.
    /// * `Bbb` — the line enters the persist buffer (waiting for a slot
    ///   if full) and its background write-back is issued; the hierarchy
    ///   also receives the store for later loads.
    /// * `AdrOnly` — the line goes through the full secure write path;
    ///   durability is the write-back's completion.
    ///
    /// Returns the cycles from issue to durability.
    ///
    /// # Errors
    ///
    /// Propagates metadata [`IntegrityError`]s from the secure write
    /// path.
    pub fn persist(&mut self, addr: u64, data: Block) -> Result<Cycles, IntegrityError> {
        let issued = self.clock;
        let durable_at = match self.config.domain {
            PersistenceDomain::Epd => {
                self.write(addr, data)?;
                issued // durable immediately on arrival in the hierarchy
            }
            PersistenceDomain::AdrOnly => {
                // The store still lands in the (volatile) hierarchy for
                // locality, but durability requires the full secure
                // write-back *and* durable metadata (§II-D).
                let spill = self.hierarchy.write(addr, data);
                let mut t = self.secure_writeback(addr, data, issued)?;
                t = self.engine.persist_strict(&mut self.platform, addr, t)?;
                if let Some(victim) = spill {
                    if victim.addr != addr {
                        t = self.secure_writeback(victim.addr, victim.data, t)?;
                        t = self
                            .engine
                            .persist_strict(&mut self.platform, victim.addr, t)?;
                    }
                }
                self.clock = t;
                t
            }
            PersistenceDomain::Bbb { buffer_lines } => {
                if self.persist_buffer.is_none() {
                    self.persist_buffer = Some(PersistBuffer::new(buffer_lines));
                }
                let spill = self.hierarchy.write(addr, data);
                // Admission: wait for a buffer slot if needed.
                let buffer = self.persist_buffer.as_mut().expect("just created");
                let admitted = buffer.slot_available(issued);
                let stalled = admitted > issued;
                // Background write-back starts at admission; the entry
                // only leaves the battery-backed buffer once data *and*
                // metadata are durable.
                let done = self.secure_writeback(addr, data, admitted)?;
                let done = self.engine.persist_strict(&mut self.platform, addr, done)?;
                let buffer = self.persist_buffer.as_mut().expect("present");
                buffer.push(done);
                if stalled {
                    self.persist_stats.buffer_stalls += 1;
                }
                let mut t = admitted;
                if let Some(victim) = spill {
                    if victim.addr != addr {
                        t = self
                            .secure_writeback(victim.addr, victim.data, t)?
                            .max(admitted);
                    }
                }
                self.clock = t.max(admitted);
                admitted
            }
        };
        self.persist_stats.persists += 1;
        self.persist_stats.total_latency_cycles += durable_at.saturating_sub(issued).0;
        Ok(durable_at)
    }

    /// Run-time persist statistics.
    #[must_use]
    pub fn persist_stats(&self) -> PersistStats {
        self.persist_stats
    }

    /// Lines currently held by the BBB persist buffer.
    #[must_use]
    pub fn persist_buffer_occupancy(&self) -> usize {
        self.persist_buffer
            .as_ref()
            .map_or(0, PersistBuffer::occupancy)
    }

    /// Simulates an outage for the **non-EPD** domains: the volatile
    /// hierarchy is lost; the battery only finishes the persistence
    /// domain's own contents (nothing for ADR — the WPQ drains in
    /// hardware; the in-flight buffer write-backs for BBB). Returns the
    /// residual hold-up time in cycles.
    ///
    /// For the EPD domain use
    /// [`crash_and_drain`](Self::crash_and_drain) — the whole hierarchy
    /// must be flushed there.
    ///
    /// # Panics
    ///
    /// Panics if the configured domain is [`PersistenceDomain::Epd`].
    pub fn crash_power_loss(&mut self) -> Cycles {
        assert_ne!(
            self.config.domain,
            PersistenceDomain::Epd,
            "EPD systems drain the hierarchy: use crash_and_drain"
        );
        let residual = match (&self.config.domain, &self.persist_buffer) {
            (PersistenceDomain::Bbb { .. }, Some(buf)) => {
                buf.drain_done().saturating_sub(self.clock)
            }
            _ => Cycles::ZERO,
        };
        if let Some(buf) = self.persist_buffer.as_mut() {
            buf.clear();
        }
        self.hierarchy.clear();
        self.engine.clear_caches_on_power_loss();
        self.clock = Cycles::ZERO;
        residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::system::SecureEpdSystem;

    fn sys(domain: PersistenceDomain) -> SecureEpdSystem {
        let cfg = SystemConfig {
            domain,
            ..SystemConfig::small_test()
        };
        SecureEpdSystem::new(cfg)
    }

    #[test]
    fn adr_persists_survive_power_loss_without_a_drain() {
        let mut s = sys(PersistenceDomain::AdrOnly);
        for i in 0..16u64 {
            s.persist(i * 16448, [i as u8 + 1; 64]).expect("persist");
        }
        let residual = s.crash_power_loss();
        assert_eq!(residual, Cycles::ZERO, "ADR needs no residual hold-up");
        for i in 0..16u64 {
            assert_eq!(s.read(i * 16448).expect("verified"), [i as u8 + 1; 64]);
        }
    }

    #[test]
    fn epd_writes_are_lost_without_the_drain() {
        // The EPD contract: the hierarchy IS the persistence domain, so
        // cutting power without the backed drain loses recent stores.
        let mut s = sys(PersistenceDomain::Epd);
        s.persist(0x4000, [7; 64]).expect("persist");
        // Simulate a failed battery: wipe volatile state directly.
        s.hierarchy_mut().clear();
        assert_eq!(
            s.read(0x4000).expect("verified zeros"),
            [0u8; 64],
            "store was lost"
        );
    }

    #[test]
    fn epd_persists_are_instantaneous() {
        let mut s = sys(PersistenceDomain::Epd);
        for i in 0..32u64 {
            s.persist(i * 16448, [1; 64]).expect("persist");
        }
        assert_eq!(s.persist_stats().persists, 32);
        assert_eq!(s.persist_stats().mean_latency(), 0.0);
    }

    #[test]
    fn adr_persists_pay_the_secure_write_path() {
        let mut s = sys(PersistenceDomain::AdrOnly);
        s.persist(0, [1; 64]).expect("persist");
        let stats = s.persist_stats();
        assert!(
            stats.mean_latency() > 2000.0,
            "ADR persists wait for NVM + metadata ({} cycles)",
            stats.mean_latency()
        );
    }

    #[test]
    fn bbb_absorbs_bursts_then_stalls_at_capacity() {
        let mut s = sys(PersistenceDomain::Bbb { buffer_lines: 4 });
        for i in 0..32u64 {
            s.persist(i * 16448, [2; 64]).expect("persist");
        }
        let stats = s.persist_stats();
        assert!(
            stats.buffer_stalls > 0,
            "a 4-line buffer must fill under a 32-store burst"
        );
        assert!(stats.buffer_stalls < 32, "the first inserts are free");
        // Still far cheaper on average than ADR.
        let mut adr = sys(PersistenceDomain::AdrOnly);
        for i in 0..32u64 {
            adr.persist(i * 16448, [2; 64]).expect("persist");
        }
        assert!(stats.mean_latency() < adr.persist_stats().mean_latency());
    }

    #[test]
    fn bbb_crash_flushes_only_the_buffer() {
        let mut s = sys(PersistenceDomain::Bbb { buffer_lines: 8 });
        for i in 0..8u64 {
            s.persist(i * 16448, [3; 64]).expect("persist");
        }
        assert!(s.persist_buffer_occupancy() > 0);
        let _residual = s.crash_power_loss();
        assert_eq!(s.persist_buffer_occupancy(), 0);
        // Persisted data is in NVM (the background write-backs were
        // issued at admission).
        for i in 0..8u64 {
            assert_eq!(s.read(i * 16448).expect("verified"), [3; 64]);
        }
    }

    #[test]
    #[should_panic(expected = "use crash_and_drain")]
    fn epd_rejects_power_loss_shortcut() {
        let mut s = sys(PersistenceDomain::Epd);
        let _ = s.crash_power_loss();
    }

    #[test]
    fn domain_display() {
        assert_eq!(PersistenceDomain::AdrOnly.to_string(), "ADR");
        assert_eq!(
            PersistenceDomain::Bbb { buffer_lines: 64 }.to_string(),
            "BBB(64)"
        );
        assert_eq!(PersistenceDomain::default(), PersistenceDomain::Epd);
    }
}
