//! The on-chip drain counter registers (paper §IV-C.1).
//!
//! Horus protects the CHV without any in-memory counters or tree: a
//! persistent, monotonically increasing **drain counter** (DC) provides a
//! unique initialization vector for every block ever flushed to the CHV,
//! across all draining episodes. The **ephemeral drain counter** (eDC)
//! counts the blocks of the *current* episode and is cleared on recovery,
//! so the DC value used for the block at CHV position `i` is always
//! recoverable as `DC - eDC + i`.

use serde::{Deserialize, Serialize};

/// The DC/eDC register pair.
///
/// ```
/// use horus_core::DrainCounters;
/// let mut dc = DrainCounters::new();
/// assert_eq!(dc.allocate(), 1);
/// assert_eq!(dc.allocate(), 2);
/// assert_eq!(dc.for_position(0), 1);
/// assert_eq!(dc.for_position(1), 2);
/// dc.clear_ephemeral();
/// assert_eq!(dc.allocate(), 3, "DC keeps increasing across episodes");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DrainCounters {
    dc: u64,
    edc: u64,
}

impl DrainCounters {
    /// Fresh registers (first boot).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The persistent drain counter: total blocks ever flushed.
    #[must_use]
    pub fn dc(&self) -> u64 {
        self.dc
    }

    /// The ephemeral drain counter: blocks flushed in the current (most
    /// recent, unrecovered) episode.
    #[must_use]
    pub fn edc(&self) -> u64 {
        self.edc
    }

    /// Allocates the next drain-counter value for a flush operation.
    /// Never returns the same value twice in the lifetime of the system.
    pub fn allocate(&mut self) -> u64 {
        self.dc += 1;
        self.edc += 1;
        self.dc
    }

    /// The DC value that was used for the block at CHV position `pos` of
    /// the current episode.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not within the current episode.
    #[must_use]
    pub fn for_position(&self, pos: u64) -> u64 {
        assert!(
            pos < self.edc,
            "position {pos} beyond the {} drained blocks",
            self.edc
        );
        self.dc - self.edc + pos + 1
    }

    /// Clears the ephemeral counter after a successful recovery.
    pub fn clear_ephemeral(&mut self) {
        self.edc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_never_repeat_across_episodes() {
        let mut r = DrainCounters::new();
        let mut seen = std::collections::HashSet::new();
        for _episode in 0..5 {
            for _ in 0..10 {
                assert!(seen.insert(r.allocate()), "drain counter value repeated");
            }
            r.clear_ephemeral();
        }
        assert_eq!(r.dc(), 50);
        assert_eq!(r.edc(), 0);
    }

    #[test]
    fn position_mapping_is_exact() {
        let mut r = DrainCounters::new();
        // First episode: 3 blocks; recover; second episode: 4 blocks.
        let e1: Vec<u64> = (0..3).map(|_| r.allocate()).collect();
        for (i, v) in e1.iter().enumerate() {
            assert_eq!(r.for_position(i as u64), *v);
        }
        r.clear_ephemeral();
        let e2: Vec<u64> = (0..4).map(|_| r.allocate()).collect();
        for (i, v) in e2.iter().enumerate() {
            assert_eq!(r.for_position(i as u64), *v);
        }
        assert_eq!(e2[0], 4);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn out_of_episode_position_panics() {
        let mut r = DrainCounters::new();
        r.allocate();
        let _ = r.for_position(1);
    }
}
