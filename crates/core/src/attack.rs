//! Attacker toolkit for the threat model of §IV-A / §IV-C.4.
//!
//! The attacker owns everything outside the processor chip: they can
//! read and rewrite NVM at will between the drain and the recovery (bus
//! snooping, physical theft, replay). These helpers mutate the
//! [`NvmDevice`](horus_nvm::NvmDevice) directly — no controller costs,
//! no verification — exactly what hardware cannot prevent and the MACs
//! must detect.
//!
//! Every attack here must cause [`SecureEpdSystem::recover`] to return
//! [`RecoveryError::ChvIntegrity`](crate::RecoveryError); the tests in
//! `tests/security.rs` assert exactly that.

use crate::chv::ChvLayout;
use crate::system::SecureEpdSystem;
use horus_nvm::Block;

fn layout_and_blocks(sys: &SecureEpdSystem) -> (ChvLayout, u64) {
    let ep = sys.episode().expect("an unrecovered Horus episode");
    let layout = sys.chv_layout().expect("episode used the CHV");
    (layout, ep.blocks)
}

fn flip_bit(sys: &mut SecureEpdSystem, addr: u64, byte: usize, bit: u8) {
    let dev = sys.platform.nvm.device_mut();
    let mut b = dev.read_block(addr);
    b[byte] ^= 1 << bit;
    dev.write_block(addr, b);
}

/// Flips one ciphertext bit of CHV entry `i`.
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode or `i` is out of
/// range.
pub fn tamper_data(sys: &mut SecureEpdSystem, i: u64) {
    let (layout, n) = layout_and_blocks(sys);
    assert!(i < n, "entry {i} out of range ({n} drained)");
    flip_bit(sys, layout.data_addr(i), (i as usize) % 64, (i % 8) as u8);
}

/// Flips one bit of the stored address of CHV entry `i` (a splicing
/// attempt redirecting the block to a different location on recovery).
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode or `i` is out of
/// range.
pub fn tamper_address(sys: &mut SecureEpdSystem, i: u64) {
    let (layout, n) = layout_and_blocks(sys);
    assert!(i < n, "entry {i} out of range");
    let slot = layout.addr_slot(i);
    flip_bit(sys, layout.addr_block_addr(i), slot * 8, 3);
}

/// Flips one bit of the stored MAC covering CHV entry `i`.
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode or `i` is out of
/// range.
pub fn tamper_mac(sys: &mut SecureEpdSystem, i: u64) {
    let (layout, n) = layout_and_blocks(sys);
    assert!(i < n, "entry {i} out of range");
    let slot = layout.mac_slot(i);
    flip_bit(sys, layout.mac_block_addr(i), slot * 8, 0);
}

/// The full splice: swaps entries `i` and `j` *including* their stored
/// addresses and (SLM) their stored MACs — the strongest in-episode
/// position swap an attacker can mount. Detection relies on the drain
/// counter differing by position (§IV-C.4).
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode or an index is out of
/// range.
pub fn splice_entries(sys: &mut SecureEpdSystem, i: u64, j: u64) {
    let (layout, n) = layout_and_blocks(sys);
    assert!(i < n && j < n, "entries out of range");
    let dev = sys.platform.nvm.device_mut();

    // Swap ciphertext blocks.
    let (da, db) = (layout.data_addr(i), layout.data_addr(j));
    let (ba, bb) = (dev.read_block(da), dev.read_block(db));
    dev.write_block(da, bb);
    dev.write_block(db, ba);

    // Swap 8-byte slots between two (possibly equal) blocks.
    let mut swap8 = |addr_a: u64, slot_a: usize, addr_b: u64, slot_b: usize| {
        let mut blk_a = dev.read_block(addr_a);
        if addr_a == addr_b {
            let mut tmp = [0u8; 8];
            tmp.copy_from_slice(&blk_a[slot_a * 8..slot_a * 8 + 8]);
            blk_a.copy_within(slot_b * 8..slot_b * 8 + 8, slot_a * 8);
            blk_a[slot_b * 8..slot_b * 8 + 8].copy_from_slice(&tmp);
            dev.write_block(addr_a, blk_a);
        } else {
            let mut blk_b = dev.read_block(addr_b);
            let mut tmp = [0u8; 8];
            tmp.copy_from_slice(&blk_a[slot_a * 8..slot_a * 8 + 8]);
            blk_a[slot_a * 8..slot_a * 8 + 8].copy_from_slice(&blk_b[slot_b * 8..slot_b * 8 + 8]);
            blk_b[slot_b * 8..slot_b * 8 + 8].copy_from_slice(&tmp);
            dev.write_block(addr_a, blk_a);
            dev.write_block(addr_b, blk_b);
        }
    };

    swap8(
        layout.addr_block_addr(i),
        layout.addr_slot(i),
        layout.addr_block_addr(j),
        layout.addr_slot(j),
    );
    if layout.mode() == crate::chv::MacGranularity::SingleLevel {
        swap8(
            layout.mac_block_addr(i),
            layout.mac_slot(i),
            layout.mac_block_addr(j),
            layout.mac_slot(j),
        );
    }
}

/// A byte-for-byte snapshot of the CHV region, as an attacker with bus
/// access would capture it.
#[derive(Debug, Clone)]
pub struct ChvSnapshot {
    blocks: Vec<(u64, Block)>,
}

impl ChvSnapshot {
    /// Number of captured blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Captures the current episode's CHV contents (for a later replay).
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode.
#[must_use]
pub fn snapshot_chv(sys: &SecureEpdSystem) -> ChvSnapshot {
    let (layout, n) = layout_and_blocks(sys);
    let used = layout.blocks_used(n);
    let base = sys.map().chv_base();
    let dev = sys.platform().nvm.device();
    let blocks = (0..used)
        .map(|b| {
            let addr = base + b * 64;
            (addr, dev.read_block(addr))
        })
        .collect();
    ChvSnapshot { blocks }
}

/// Replays a previously captured CHV over the current one — the classic
/// replay attack restoring stale state. Detection relies on the
/// monotonic drain counter: the old entries were MAC'ed with smaller DC
/// values.
pub fn replay_chv(sys: &mut SecureEpdSystem, snapshot: &ChvSnapshot) {
    let dev = sys.platform.nvm.device_mut();
    for (addr, block) in &snapshot.blocks {
        dev.write_block(*addr, *block);
    }
}

/// Selectively omits the tail of the episode (the attack goal ① of
/// §IV-C.1: replaying shorter content). Zeroes every CHV block from
/// entry `from` onward.
///
/// # Panics
///
/// Panics if there is no unrecovered Horus episode or `from` is out of
/// range.
pub fn truncate_chv(sys: &mut SecureEpdSystem, from: u64) {
    let (layout, n) = layout_and_blocks(sys);
    assert!(from < n, "truncation point beyond episode");
    let dev = sys.platform.nvm.device_mut();
    for i in from..n {
        dev.write_block(layout.data_addr(i), [0u8; 64]);
    }
}
