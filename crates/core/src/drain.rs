//! The EPD drain engines: what happens between outage detection and
//! power-off (paper §IV, Figure 8).

use crate::chv::{ChvLayout, ChvWriter, MacGranularity};
use crate::report::DrainReport;
use crate::system::{Episode, SecureEpdSystem};
use horus_metadata::UpdateScheme;
use horus_nvm::Block;
use horus_sim::trace::base_resource;
use horus_sim::{critical_path, resource_usage, Cycles, ScratchArena};
use serde::{Deserialize, Serialize};

thread_local! {
    /// Recycled `(addr, block)` scratch buffers for the drain loops (the
    /// hierarchy drain order and the dirty metadata lines). One pool per
    /// thread, so every `EpisodeShards` worker recycles independently and
    /// episode results stay bit-identical to a cold run.
    static DRAIN_SCRATCH: ScratchArena<(u64, Block)> = ScratchArena::new();
}

/// The evaluated drain schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrainScheme {
    /// No memory security: flush dirty lines in place (the reference the
    /// EPD power budget is sized for today).
    NonSecure,
    /// Baseline secure EPD with the lazy run-time update scheme
    /// (the paper's **Base-LU**).
    BaseLazy,
    /// Baseline secure EPD with the eager update scheme (**Base-EU**).
    BaseEager,
    /// Horus with one stored MAC per block (**Horus-SLM**).
    HorusSlm,
    /// Horus with the double-level MAC scheme (**Horus-DLM**).
    HorusDlm,
}

impl DrainScheme {
    /// All five schemes, in the paper's presentation order.
    pub const ALL: [DrainScheme; 5] = [
        DrainScheme::NonSecure,
        DrainScheme::BaseLazy,
        DrainScheme::BaseEager,
        DrainScheme::HorusSlm,
        DrainScheme::HorusDlm,
    ];

    /// The four secure schemes compared in Figures 11–13.
    pub const SECURE: [DrainScheme; 4] = [
        DrainScheme::BaseLazy,
        DrainScheme::BaseEager,
        DrainScheme::HorusSlm,
        DrainScheme::HorusDlm,
    ];

    /// The paper's name for the scheme.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DrainScheme::NonSecure => "Non-Secure",
            DrainScheme::BaseLazy => "Base-LU",
            DrainScheme::BaseEager => "Base-EU",
            DrainScheme::HorusSlm => "Horus-SLM",
            DrainScheme::HorusDlm => "Horus-DLM",
        }
    }

    /// The CHV MAC granularity, for the Horus schemes.
    #[must_use]
    pub fn mac_granularity(self) -> Option<MacGranularity> {
        match self {
            DrainScheme::HorusSlm => Some(MacGranularity::SingleLevel),
            DrainScheme::HorusDlm => Some(MacGranularity::DoubleLevel),
            _ => None,
        }
    }

    /// Whether the scheme uses the Horus CHV path.
    #[must_use]
    pub fn is_horus(self) -> bool {
        self.mac_granularity().is_some()
    }
}

impl std::fmt::Display for DrainScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one execution of the drain loops flushed — shared bookkeeping
/// between the completed-drain path ([`SecureEpdSystem::crash_and_drain`])
/// and the interrupted path (`crash_and_drain_interrupted` in
/// [`crash`](crate::crash)).
pub(crate) struct DrainRun {
    /// Dirty hierarchy blocks streamed.
    pub(crate) flushed: u64,
    /// Metadata blocks flushed (baselines) or vaulted (Horus).
    pub(crate) metadata_blocks: u64,
    /// The CHV rotation slot used (0 for non-Horus schemes).
    pub(crate) chv_slot: u64,
    /// The cycle each Horus CHV push was issued at, in push order — the
    /// instant the DC/eDC registers increment for that block. Empty for
    /// non-Horus schemes.
    pub(crate) push_issue_cycles: Vec<Cycles>,
}

impl SecureEpdSystem {
    /// Simulates an outage: drains the dirty cache hierarchy (and the
    /// security-metadata state the scheme requires) to NVM under
    /// `scheme`, then powers the volatile state off.
    ///
    /// Timing and operation counts are measured from the moment of
    /// outage detection — exactly the window the EPD back-up power must
    /// cover.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` is a baseline whose update scheme does not
    /// match the system's run-time configuration (build the system with
    /// [`SecureEpdSystem::for_scheme`]), or if legitimate metadata fails
    /// verification mid-drain (possible only if NVM was tampered with
    /// while the system was live).
    pub fn crash_and_drain(&mut self, scheme: DrainScheme) -> DrainReport {
        let run = self.run_drain_loops(scheme);
        let flushed = run.flushed;
        let metadata_blocks = run.metadata_blocks;

        let cycles = self.platform.busy_until();
        let seconds = self.config.nvm.frequency.cycles_to_seconds(cycles);

        // Power off: all volatile state is lost.
        self.hierarchy.clear();
        if scheme.is_horus() || scheme == DrainScheme::NonSecure {
            // Baselines already cleared their metadata caches in
            // flush_after_drain; Horus drained them into the CHV.
            self.clear_metadata_caches();
        }

        if scheme.is_horus() {
            self.episodes_drained += 1;
        }
        self.episode = Some(Episode {
            scheme,
            blocks: flushed + metadata_blocks,
            chv_slot: run.chv_slot,
        });

        let mut stats = self.platform.merged_stats();
        // Probe post-processing: derive per-resource utilization and the
        // critical path from the event stream, fold queueing delays into
        // the stats histograms, and stash the full trace for export
        // (recover_with's reset_timing would otherwise discard it).
        let (utilization, critical_path) = if self.platform.probe_enabled() {
            let events = self.platform.take_trace();
            let resource_events: Vec<_> = events
                .iter()
                .filter(|e| e.track != "phase")
                .cloned()
                .collect();
            for e in &resource_events {
                stats.record_sample(&format!("queue.{}", base_resource(&e.track)), e.wait());
            }
            let usage = resource_usage(&resource_events, cycles.0);
            let cp = critical_path(&resource_events, cycles.0);
            self.episode_trace = Some(events);
            (Some(usage), cp)
        } else {
            (None, None)
        };
        DrainReport {
            scheme: scheme.name().to_owned(),
            flushed_blocks: flushed,
            metadata_blocks,
            cycles: cycles.0,
            seconds,
            reads: self.platform.nvm.total_reads(),
            writes: self.platform.nvm.total_writes(),
            mac_ops: self.platform.total_mac_ops(),
            otp_ops: self.platform.total_otp_ops(),
            stats,
            utilization,
            critical_path,
        }
    }

    /// Runs the scheme's drain loops from outage detection to the last
    /// issued operation, *without* powering off or recording the episode
    /// — the shared core of the completed and interrupted drain paths.
    /// Timing and accounting are reset first; the caller reads
    /// `platform.busy_until()` for the total drain time.
    pub(crate) fn run_drain_loops(&mut self, scheme: DrainScheme) -> DrainRun {
        match scheme {
            DrainScheme::BaseLazy => assert_eq!(
                self.engine.scheme(),
                UpdateScheme::Lazy,
                "Base-LU needs a lazy run-time engine"
            ),
            DrainScheme::BaseEager => assert_eq!(
                self.engine.scheme(),
                UpdateScheme::Eager,
                "Base-EU needs an eager run-time engine"
            ),
            _ => {}
        }

        // Measure the drain in isolation.
        self.platform.reset_timing();
        self.clock = Cycles::ZERO;
        let mut blocks = DRAIN_SCRATCH.with(ScratchArena::take);
        self.hierarchy.drain_order_into(&mut blocks);
        let flushed = blocks.len() as u64;
        let mut metadata_blocks = 0u64;
        let mut chv_slot = 0u64;
        let mut push_issue_cycles = Vec::new();

        // Walk markers: how many unique dirty lines each level
        // contributes (instant markers at cycle 0 on the phase track).
        if self.platform.probe_enabled() {
            let per_level = self.hierarchy.dirty_per_level();
            for (name, count) in ["L1", "L2", "LLC"].iter().zip(per_level) {
                self.platform.record_phase(
                    &format!("walk.{name}:{count}"),
                    Cycles::ZERO,
                    Cycles::ZERO,
                );
            }
        }

        match scheme {
            DrainScheme::NonSecure => {
                // Plain EPD: every dirty line is written in place, full
                // stop. (This models the unprotected system; the write
                // bypasses encryption by design.)
                for (addr, data) in &blocks {
                    self.platform.nvm.write(*addr, *data, "data", Cycles::ZERO);
                }
                let t = self.platform.busy_until();
                self.platform.record_phase("drain.data", Cycles::ZERO, t);
            }
            DrainScheme::BaseLazy | DrainScheme::BaseEager => {
                // Run-time secure path per flushed line (Figure 8-B).
                for (addr, data) in &blocks {
                    self.secure_writeback(*addr, *data, Cycles::ZERO)
                        .expect("legitimate drain must verify");
                }
                // Then flush the metadata caches (§IV-B).
                metadata_blocks = self.count_metadata_lines(scheme);
                let t = self.platform.busy_until();
                self.platform.record_phase("drain.data", Cycles::ZERO, t);
                self.engine.flush_after_drain(&mut self.platform, t);
                let t_flush = self.platform.busy_until();
                self.platform
                    .record_phase("drain.metadata_flush", t, t_flush);
            }
            DrainScheme::HorusSlm | DrainScheme::HorusDlm => {
                let mode = scheme.mac_granularity().expect("Horus scheme");
                // Wear levelling: episodes rotate across the reserved
                // vault slots (the slot index is derived from an on-chip
                // episode counter, so recovery knows where to look).
                let slot = self.episodes_drained % self.config.chv_rotation_slots.max(1);
                chv_slot = slot;
                let layout = ChvLayout::new(self.chv_slot_base(slot), mode);
                // A new episode overwrites the vault; if a previous one
                // was never recovered (e.g. its recovery was aborted),
                // reset the ephemeral counter so positions map to this
                // episode's DC values. DC itself never rewinds.
                self.counters.clear_ephemeral();
                // The dirty metadata lines are fixed for the whole drain
                // (the Horus data pushes bypass the run-time engine), so
                // collect them once: they size the worst case here and
                // are vaulted verbatim after the data stream below.
                let mut meta = DRAIN_SCRATCH.with(ScratchArena::take);
                self.dirty_metadata_lines_into(&mut meta);
                // The vault slot must fit the worst case before starting.
                let worst = layout.blocks_used(flushed + meta.len() as u64);
                assert!(
                    worst <= self.config.chv_slot_blocks(),
                    "CHV slot too small: need {worst} blocks, reserved {}",
                    self.config.chv_slot_blocks()
                );
                let mut writer =
                    ChvWriter::new(layout, &self.config.chv_key(), &self.config.chv_mac_key());
                let mut t = Cycles::ZERO;
                push_issue_cycles.reserve_exact(blocks.len() + meta.len());
                for (addr, data) in &blocks {
                    let dc = self.counters.allocate();
                    push_issue_cycles.push(t);
                    t = writer.push(&mut self.platform, dc, *addr, data, "chv_data", t);
                }
                let t_data = self.platform.busy_until();
                self.platform
                    .record_phase("drain.data", Cycles::ZERO, t_data);
                // Drain the dirty metadata-cache contents through the
                // same vault (they are just more blocks to protect).
                metadata_blocks = meta.len() as u64;
                for (addr, data) in &meta {
                    let dc = self.counters.allocate();
                    push_issue_cycles.push(t);
                    t = writer.push(&mut self.platform, dc, *addr, data, "chv_meta", t);
                }
                DRAIN_SCRATCH.with(|arena| arena.put(meta));
                let t_meta = self.platform.busy_until();
                self.platform.record_phase("drain.metadata", t_data, t_meta);
                writer.finish(&mut self.platform, t);
                let t_finish = self.platform.busy_until();
                self.platform.record_phase("drain.finish", t_meta, t_finish);
            }
        }
        DRAIN_SCRATCH.with(|arena| arena.put(blocks));

        DrainRun {
            flushed,
            metadata_blocks,
            chv_slot,
            push_issue_cycles,
        }
    }

    fn count_metadata_lines(&self, scheme: DrainScheme) -> u64 {
        let m = self.metadata();
        match scheme {
            // Eager flushes dirty lines in place; lazy shadows every
            // valid line.
            DrainScheme::BaseEager => {
                m.counter_cache().dirty_count()
                    + m.mac_cache().dirty_count()
                    + m.tree_cache().dirty_count()
            }
            _ => (m.counter_cache().len() + m.mac_cache().len() + m.tree_cache().len()) as u64,
        }
    }

    fn dirty_metadata_lines_into(&self, out: &mut Vec<(u64, Block)>) {
        out.clear();
        let m = self.metadata();
        for c in [m.counter_cache(), m.mac_cache(), m.tree_cache()] {
            out.extend(c.dirty_lines().map(|(a, b)| (a, *b)));
        }
    }

    pub(crate) fn clear_metadata_caches(&mut self) {
        // Power loss: the engine's caches are volatile. Flushing already
        // cleared them for the baselines; Horus clears them here after
        // vaulting the dirty lines.
        self.engine.clear_caches_on_power_loss();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn filled_system(scheme: DrainScheme) -> SecureEpdSystem {
        let mut s = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
        // Sparse dirty fill: >=16 KB apart, with the +64 offset cycling
        // cache sets (a bare 16 KB stride aliases every line to set 0).
        for i in 0..40u64 {
            s.write(i * 16448, [i as u8 + 1; 64]).expect("ok");
        }
        s
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(DrainScheme::BaseLazy.name(), "Base-LU");
        assert_eq!(DrainScheme::BaseEager.name(), "Base-EU");
        assert_eq!(DrainScheme::HorusSlm.to_string(), "Horus-SLM");
        assert_eq!(DrainScheme::ALL.len(), 5);
        assert!(DrainScheme::HorusDlm.is_horus());
        assert!(!DrainScheme::BaseLazy.is_horus());
    }

    #[test]
    fn nonsecure_drain_writes_each_block_once() {
        let mut s = filled_system(DrainScheme::NonSecure);
        let dirty = s.hierarchy().drain_order().len() as u64;
        let r = s.crash_and_drain(DrainScheme::NonSecure);
        assert_eq!(r.flushed_blocks, dirty);
        assert_eq!(r.writes, dirty);
        assert_eq!(r.reads, 0);
        assert_eq!(r.mac_ops, 0);
        assert!(
            s.hierarchy().drain_order().is_empty(),
            "hierarchy powered off"
        );
    }

    #[test]
    fn baseline_drain_is_much_more_expensive() {
        let mut ns = filled_system(DrainScheme::NonSecure);
        let base = ns.crash_and_drain(DrainScheme::NonSecure);
        let mut lu = filled_system(DrainScheme::BaseLazy);
        let r = lu.crash_and_drain(DrainScheme::BaseLazy);
        assert!(
            r.memory_requests() > 3 * base.memory_requests(),
            "baseline {} vs non-secure {}",
            r.memory_requests(),
            base.memory_requests()
        );
        assert!(r.mac_ops > 0);
        assert!(r.cycles > base.cycles);
    }

    #[test]
    fn horus_drain_stays_close_to_nonsecure() {
        let mut ns = filled_system(DrainScheme::NonSecure);
        let base = ns.crash_and_drain(DrainScheme::NonSecure);
        let mut hs = filled_system(DrainScheme::HorusSlm);
        let r = hs.crash_and_drain(DrainScheme::HorusSlm);
        // <= 1.5x writes per streamed block (1.25x steady state plus
        // partial-group padding); Horus also vaults dirty metadata lines.
        let streamed = r.flushed_blocks + r.metadata_blocks;
        assert!(streamed >= base.flushed_blocks);
        assert!(
            r.writes <= streamed * 3 / 2,
            "horus {} writes for {streamed} blocks",
            r.writes
        );
        assert_eq!(r.reads, 0, "Horus drain never reads memory");
        // And per flushed data block, Horus stays close to non-secure.
        assert!(
            r.stats.get("mem.write.chv_data") == base.writes,
            "one CHV data write per dirty line"
        );
    }

    #[test]
    fn horus_dlm_writes_fewer_macs_than_slm() {
        let mut slm = filled_system(DrainScheme::HorusSlm);
        let r_slm = slm.crash_and_drain(DrainScheme::HorusSlm);
        let mut dlm = filled_system(DrainScheme::HorusDlm);
        let r_dlm = dlm.crash_and_drain(DrainScheme::HorusDlm);
        assert!(
            r_dlm.stats.get("mem.write.chv_mac") < r_slm.stats.get("mem.write.chv_mac"),
            "DLM must write fewer MAC blocks"
        );
        assert!(
            r_dlm.mac_ops > r_slm.mac_ops,
            "DLM computes extra second-level MACs"
        );
    }

    #[test]
    fn drain_counter_advances_per_block() {
        let mut s = filled_system(DrainScheme::HorusSlm);
        assert_eq!(s.drain_counters().dc(), 0);
        let r = s.crash_and_drain(DrainScheme::HorusSlm);
        assert_eq!(
            s.drain_counters().dc(),
            r.flushed_blocks + r.metadata_blocks
        );
        assert_eq!(s.drain_counters().edc(), s.drain_counters().dc());
    }

    #[test]
    #[should_panic(expected = "eager run-time engine")]
    fn base_eu_on_lazy_engine_panics() {
        let mut s = filled_system(DrainScheme::BaseLazy);
        let _ = s.crash_and_drain(DrainScheme::BaseEager);
    }

    #[test]
    fn probed_drain_matches_unprobed_and_attributes_resources() {
        let mut plain = filled_system(DrainScheme::HorusSlm);
        let r_plain = plain.crash_and_drain(DrainScheme::HorusSlm);
        assert!(r_plain.utilization.is_none());
        assert!(r_plain.critical_path.is_none());
        assert!(plain.take_episode_trace().is_none());

        let mut probed = filled_system(DrainScheme::HorusSlm);
        probed.enable_probe();
        let r = probed.crash_and_drain(DrainScheme::HorusSlm);
        // The probe must not perturb timing or accounting.
        assert_eq!(r.cycles, r_plain.cycles);
        assert_eq!(r.writes, r_plain.writes);
        assert_eq!(r.mac_ops, r_plain.mac_ops);
        for (k, v) in r_plain.stats.iter() {
            assert_eq!(r.stats.get(k), v, "counter {k}");
        }
        // Utilization covers banks, engines; queue histograms recorded.
        let usage = r.utilization.as_ref().expect("probed report has usage");
        assert!(usage.iter().any(|u| u.track.starts_with("pcm-bank[")));
        assert!(usage.iter().any(|u| u.track == "hash"));
        assert!(r.stats.histogram("queue.pcm-bank").is_some());
        // Horus drains are PCM-bank bound (the paper's Figure 6 point:
        // sequential CHV writes keep all banks busy while crypto hides).
        let cp = r.critical_path.as_ref().expect("probed report has path");
        assert_eq!(cp.bounding_resource, "pcm-bank");
        assert_eq!(cp.total_cycles, r.cycles);
        // The episode trace is exportable and includes phase markers.
        let trace = probed.take_episode_trace().expect("trace stashed");
        assert!(trace
            .iter()
            .any(|e| e.track == "phase" && e.name == "drain.data"));
        assert!(trace.iter().any(|e| e.name.starts_with("walk.L1:")));
        assert!(probed.take_episode_trace().is_none(), "take drains");
    }

    #[test]
    fn probed_recovery_stashes_its_own_trace() {
        let mut s = filled_system(DrainScheme::HorusSlm);
        s.enable_probe();
        s.crash_and_drain(DrainScheme::HorusSlm);
        let drain_trace = s.take_episode_trace().expect("drain trace");
        assert!(!drain_trace.is_empty());
        s.recover().expect("verifies");
        let rec_trace = s.take_episode_trace().expect("recovery trace");
        assert!(rec_trace
            .iter()
            .any(|e| e.track == "phase" && e.name.starts_with("recovery.")));
        assert!(rec_trace.iter().any(|e| e.name.starts_with("read.")));
    }

    #[test]
    fn baseline_flushes_metadata_after_drain() {
        let mut s = filled_system(DrainScheme::BaseLazy);
        let r = s.crash_and_drain(DrainScheme::BaseLazy);
        assert!(
            r.stats.get("mem.write.shadow") > 0,
            "lazy baseline shadows its caches"
        );
        assert!(r.metadata_blocks > 0);
    }
}
