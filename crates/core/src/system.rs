//! The secure EPD memory system: run-time path and crash orchestration.

use crate::chv::ChvLayout;
use crate::config::SystemConfig;
use crate::counter_reg::DrainCounters;
use crate::domain::{PersistBuffer, PersistStats};
use crate::drain::DrainScheme;
use horus_cache::CacheHierarchy;
use horus_crypto::{otp, Aes128, Cmac};
use horus_metadata::{IntegrityError, MetadataEngine, Platform, UpdateScheme};
use horus_nvm::{AddressMap, Block};
use horus_sim::{Cycles, TraceEvent};

/// Bookkeeping for the most recent (unrecovered) draining episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// The drain scheme that produced the episode.
    pub scheme: DrainScheme,
    /// Total blocks streamed (hierarchy + metadata for Horus schemes).
    pub blocks: u64,
    /// The CHV rotation slot this episode's vault occupies.
    pub chv_slot: u64,
}

/// A complete secure EPD memory system: cache hierarchy, secure memory
/// controller (encryption + MAC + Merkle tree), timed platform, and the
/// Horus drain-counter registers.
///
/// At run time the hierarchy absorbs writes; dirty LLC evictions go
/// through the full secure write path. On a crash,
/// [`crash_and_drain`](crate::SecureEpdSystem::crash_and_drain) flushes
/// the hierarchy with the chosen [`DrainScheme`]; after "power returns",
/// [`recover`](crate::SecureEpdSystem::recover) restores it.
#[derive(Debug, Clone)]
pub struct SecureEpdSystem {
    pub(crate) config: SystemConfig,
    pub(crate) map: AddressMap,
    pub(crate) platform: Platform,
    pub(crate) engine: MetadataEngine,
    pub(crate) hierarchy: CacheHierarchy,
    pub(crate) data_aes: Aes128,
    pub(crate) data_cmac: Cmac,
    pub(crate) counters: DrainCounters,
    pub(crate) episode: Option<Episode>,
    pub(crate) episodes_drained: u64,
    /// Horus's persistent drain-open register: set when a drain episode
    /// was cut short by a power failure before its last CHV write
    /// completed, cleared when a drain or its recovery finishes. Lives
    /// beside the persistent DC register on chip; the baselines have no
    /// such register, which is exactly their vulnerability window.
    pub(crate) drain_open: bool,
    pub(crate) persist_buffer: Option<PersistBuffer>,
    pub(crate) persist_stats: PersistStats,
    pub(crate) clock: Cycles,
    /// The trace of the most recent probed episode (drain or recovery),
    /// stashed before `reset_timing` clears the platform's probes.
    pub(crate) episode_trace: Option<Vec<TraceEvent>>,
}

impl SecureEpdSystem {
    /// Builds a fresh system (zeroed NVM, cold caches) from `config`.
    ///
    /// Non-EPD persistence domains (ADR, BBB) force the eager update
    /// scheme: their durable stores must leave the NVM tree verifiable
    /// at any instant, which the lazy scheme cannot do.
    #[must_use]
    pub fn new(mut config: SystemConfig) -> Self {
        if config.domain != crate::domain::PersistenceDomain::Epd {
            config.scheme = UpdateScheme::Eager;
        }
        let map = config.address_map();
        let platform = Platform::new(config.nvm, config.crypto);
        let engine = MetadataEngine::new(
            map.clone(),
            config.scheme,
            config.metadata_caches,
            &config.tree_key(),
        );
        let hierarchy = CacheHierarchy::new(&config.hierarchy);
        Self {
            data_aes: Aes128::new(&config.data_key()),
            data_cmac: Cmac::new(&config.mac_key()),
            map,
            platform,
            engine,
            hierarchy,
            counters: DrainCounters::new(),
            episode: None,
            episodes_drained: 0,
            drain_open: false,
            persist_buffer: None,
            persist_stats: PersistStats::default(),
            clock: Cycles::ZERO,
            episode_trace: None,
            config,
        }
    }

    /// Enables the *horus-probe* observability layer: every platform
    /// resource records cycle-stamped operation spans, drains and
    /// recoveries leave their event stream in
    /// [`take_episode_trace`](Self::take_episode_trace), and
    /// [`DrainReport`](crate::DrainReport)s carry utilization and
    /// critical-path attribution. Timing and counters are unaffected.
    pub fn enable_probe(&mut self) {
        self.platform.enable_probe();
    }

    /// Whether the probe layer records.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.platform.probe_enabled()
    }

    /// Takes the trace of the most recent probed drain or recovery
    /// episode (`None` when unprobed or already taken).
    pub fn take_episode_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.episode_trace.take()
    }

    /// Builds a system whose run-time Merkle-tree update scheme matches
    /// what `scheme` requires (Base-EU needs eager updates; everything
    /// else runs the lazy scheme the paper assumes for EPD run-time
    /// performance).
    #[must_use]
    pub fn for_scheme(mut config: SystemConfig, scheme: DrainScheme) -> Self {
        config.scheme = match scheme {
            DrainScheme::BaseEager => UpdateScheme::Eager,
            _ => UpdateScheme::Lazy,
        };
        Self::new(config)
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The physical address map.
    #[must_use]
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The timed platform (NVM + engines + accounting).
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The cache hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable hierarchy access, used by workload generators installing a
    /// crash-time snapshot.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// The metadata engine (caches, tree root).
    #[must_use]
    pub fn metadata(&self) -> &MetadataEngine {
        &self.engine
    }

    /// The drain-counter registers.
    #[must_use]
    pub fn drain_counters(&self) -> &DrainCounters {
        &self.counters
    }

    /// The most recent unrecovered draining episode, if any.
    #[must_use]
    pub fn episode(&self) -> Option<Episode> {
        self.episode
    }

    /// Whether the persistent drain-open register is set: a Horus drain
    /// was interrupted by a power failure and has not been recovered yet.
    #[must_use]
    pub fn drain_open(&self) -> bool {
        self.drain_open
    }

    /// The CHV layout of the most recent episode, if it was a Horus
    /// drain.
    #[must_use]
    pub fn chv_layout(&self) -> Option<ChvLayout> {
        let ep = self.episode?;
        let mode = ep.scheme.mac_granularity()?;
        Some(ChvLayout::new(self.chv_slot_base(ep.chv_slot), mode))
    }

    /// Base address of CHV rotation slot `slot`.
    #[must_use]
    pub(crate) fn chv_slot_base(&self, slot: u64) -> u64 {
        self.map.chv_base() + slot * self.config.chv_slot_blocks() * 64
    }

    /// Enables the Osiris stop-loss discipline (see
    /// [`osiris`](crate::osiris)) on the live system.
    pub fn enable_osiris(&mut self, stop_loss: u64) {
        self.engine.set_osiris(Some(stop_loss));
    }

    /// Test aid: turns the discipline off to simulate updates made
    /// without it.
    #[doc(hidden)]
    pub fn disable_osiris_for_test(&mut self) {
        self.engine.set_osiris(None);
    }

    /// The attacker's view of the off-chip NVM (threat model §IV-A):
    /// unrestricted, unaccounted read/write access to the device. Used
    /// by [`attack`](crate::attack) and by security tests mounting
    /// custom manipulations.
    pub fn attacker_nvm(&mut self) -> &mut horus_nvm::NvmDevice {
        self.platform.nvm.device_mut()
    }

    /// Debug aid: exhaustively checks the metadata verification
    /// invariant (linear in tree size; use small configs).
    ///
    /// # Errors
    ///
    /// A description of the first violated parent/child edge.
    #[doc(hidden)]
    pub fn debug_check_metadata(&self) -> Result<(), String> {
        self.engine.check_consistency(self.platform.nvm.device())
    }

    /// Debug aid: mutable access to the metadata engine (tracing).
    #[doc(hidden)]
    pub fn debug_metadata_mut(&mut self) -> &mut MetadataEngine {
        &mut self.engine
    }

    // ----- run-time path ---------------------------------------------------

    fn assert_data_addr(&self, addr: u64) {
        assert!(
            addr % 64 == 0 && addr < self.map.data_bytes(),
            "address {addr:#x} is not a block-aligned data address (data region is {} bytes)",
            self.map.data_bytes()
        );
    }

    /// A run-time store: writes `data` at `addr` into the hierarchy;
    /// dirty LLC evictions take the secure write path to NVM.
    ///
    /// # Errors
    ///
    /// Propagates an [`IntegrityError`] if metadata verification fails
    /// while handling an eviction (only possible if NVM was tampered
    /// with).
    pub fn write(&mut self, addr: u64, data: Block) -> Result<(), IntegrityError> {
        self.assert_data_addr(addr);
        if let Some(victim) = self.hierarchy.write(addr, data) {
            let t = self.clock;
            let done = self.secure_writeback(victim.addr, victim.data, t)?;
            self.clock = done;
        }
        Ok(())
    }

    /// A run-time load: returns the block at `addr`, from the hierarchy
    /// if cached, otherwise decrypted and verified from NVM (and filled
    /// into L1).
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] if the data MAC or any metadata MAC fails
    /// verification.
    pub fn read(&mut self, addr: u64) -> Result<Block, IntegrityError> {
        self.assert_data_addr(addr);
        if let Some(b) = self.hierarchy.read(addr) {
            return Ok(b);
        }
        let t = self.clock;
        let (ct, c) = self.platform.nvm.read(addr, "data", t);
        let (counter, t1) = self.engine.read_counter(&mut self.platform, addr, c.done)?;
        if counter == 0 {
            // The counter is integrity-verified and zero: no write ever
            // reached this block through the secure path, so it reads as
            // initialization zeros. (An attacker cannot fake this state
            // for a written block — its verified counter is non-zero.)
            self.clock = t1;
            return Ok([0u8; 64]);
        }
        let dec = self.platform.otp_op("data", t1);
        let data = otp::decrypt_block_ctr(&self.data_aes, addr, counter, &ct);
        let (stored_mac, t2) = self.engine.load_mac(&mut self.platform, addr, dec.done)?;
        let vc = self.platform.mac_op("verify_data", t2);
        let mac = self
            .data_cmac
            .mac64(&crate::chv::entry_mac_input(&ct, addr, counter));
        if mac != stored_mac {
            return Err(IntegrityError { addr, what: "data" });
        }
        self.clock = vc.done;
        if let Some(victim) = self.hierarchy.fill(addr, data) {
            let done = self.secure_writeback(victim.addr, victim.data, self.clock)?;
            self.clock = done;
        }
        Ok(data)
    }

    /// The full secure write path for one block leaving the persistence
    /// domain's volatile part: bump + verify the counter, encrypt, MAC,
    /// and write — handling counter overflow by re-encrypting the page.
    pub(crate) fn secure_writeback(
        &mut self,
        addr: u64,
        data: Block,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let update = self
            .engine
            .increment_counter(&mut self.platform, addr, ready)?;
        let mut t = update.ready;
        if update.outcome.overflowed() {
            t = self.reencrypt_page(addr, &update.old, &update.new, t)?;
        }
        let counter = update.outcome.counter();
        let enc = self.platform.otp_op("data", t);
        let ct = otp::encrypt_block_ctr(&self.data_aes, addr, counter, &data);
        let mc = self.platform.mac_op("data_mac", enc.done);
        let mac = self
            .data_cmac
            .mac64(&crate::chv::entry_mac_input(&ct, addr, counter));
        t = self
            .engine
            .store_mac(&mut self.platform, addr, mac, mc.done)?;
        let wc = self.platform.nvm.write(addr, ct, "data", t);
        Ok(wc.done)
    }

    /// Re-encrypts the 4 KB page after a minor-counter overflow: every
    /// sibling block's ciphertext is re-based from its old counter to its
    /// new one, with fresh MACs.
    fn reencrypt_page(
        &mut self,
        addr: u64,
        old: &horus_metadata::CounterBlock,
        new: &horus_metadata::CounterBlock,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let page = addr & !4095;
        let written_slot = self.map.counter_slot(addr);
        let mut t = ready;
        for slot in 0..64 {
            if slot == written_slot {
                continue; // freshly written by the caller
            }
            let saddr = page + (slot as u64) * 64;
            let (ct, c) = self.platform.nvm.read(saddr, "reenc", t);
            let dec = self.platform.otp_op("reenc", c.done);
            let plain = otp::decrypt_block_ctr(&self.data_aes, saddr, old.counter(slot), &ct);
            let new_ct = otp::encrypt_block_ctr(&self.data_aes, saddr, new.counter(slot), &plain);
            let mc = self.platform.mac_op("reenc_mac", dec.done);
            let mac = self.data_cmac.mac64(&crate::chv::entry_mac_input(
                &new_ct,
                saddr,
                new.counter(slot),
            ));
            t = self
                .engine
                .store_mac(&mut self.platform, saddr, mac, mc.done)?;
            let wc = self.platform.nvm.write(saddr, new_ct, "reenc", t);
            t = wc.done;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SecureEpdSystem {
        SecureEpdSystem::new(SystemConfig::small_test())
    }

    fn cached_anywhere(h: &CacheHierarchy, addr: u64) -> bool {
        h.l1().contains(addr) || h.l2().contains(addr) || h.llc().contains(addr)
    }

    #[test]
    fn write_then_read_hits_hierarchy() {
        let mut s = sys();
        s.write(0x1000, [7u8; 64]).expect("ok");
        assert_eq!(s.read(0x1000).expect("ok"), [7u8; 64]);
        // No NVM data traffic yet: it never left the hierarchy.
        assert_eq!(s.platform().nvm.stats().get("mem.write.data"), 0);
    }

    #[test]
    fn eviction_roundtrips_through_encrypted_memory() {
        let mut s = sys();
        // Write far more distinct lines than the hierarchy holds, forcing
        // dirty evictions through the secure path.
        let lines = 512u64;
        for i in 0..lines {
            s.write(i * 4096, [i as u8; 64]).expect("ok");
        }
        assert!(
            s.platform().nvm.stats().get("mem.write.data") > 0,
            "evictions hit NVM"
        );
        // Everything reads back with verification.
        for i in 0..lines {
            assert_eq!(
                s.read(i * 4096).expect("verifies"),
                [i as u8; 64],
                "line {i}"
            );
        }
        // Memory holds ciphertext, not plaintext.
        let some_evicted = (0..lines)
            .map(|i| i * 4096)
            .find(|a| s.platform().nvm.device().is_written(*a))
            .expect("at least one line in NVM");
        let raw = s.platform().nvm.device().read_block(some_evicted);
        assert_ne!(
            raw,
            [(some_evicted / 4096) as u8; 64],
            "NVM content is encrypted"
        );
    }

    #[test]
    fn tampered_data_detected_on_read() {
        let mut s = sys();
        for i in 0..512u64 {
            s.write(i * 4096, [3u8; 64]).expect("ok");
        }
        let victim = (0..512u64)
            .map(|i| i * 4096)
            .find(|a| {
                s.platform().nvm.device().is_written(*a) && !cached_anywhere(s.hierarchy(), *a)
            })
            .expect("an evicted line");
        let mut ct = s.platform().nvm.device().read_block(victim);
        ct[0] ^= 1;
        s.platform.nvm.device_mut().write_block(victim, ct);
        let err = s.read(victim).expect_err("tamper must be detected");
        assert_eq!(err.what, "data");
    }

    #[test]
    fn counter_overflow_reencrypts_page() {
        let mut s = sys();
        let addr = 0x0000u64;
        // Park sibling data in NVM first.
        s.write(addr + 64, [0xAB; 64]).expect("ok");
        // Force the sibling out of the hierarchy so NVM is authoritative.
        for i in 1..2048u64 {
            s.write(i * 4096, [0u8; 64]).expect("ok");
        }
        // Drive one block's minor counter past the 7-bit limit via the
        // secure write path directly.
        let mut t = s.clock;
        for _ in 0..130 {
            t = s.secure_writeback(addr, [0x55; 64], t).expect("ok");
        }
        s.clock = t;
        assert!(
            s.platform().nvm.stats().get("mem.write.reenc") > 0,
            "page re-encrypted"
        );
        // Both the overflowed block and its sibling still verify.
        assert_eq!(s.read(addr).expect("ok"), [0x55; 64]);
        assert_eq!(s.read(addr + 64).expect("ok"), [0xAB; 64]);
    }

    #[test]
    fn for_scheme_picks_runtime_update_scheme() {
        let cfg = SystemConfig::small_test();
        let eager = SecureEpdSystem::for_scheme(cfg.clone(), DrainScheme::BaseEager);
        assert_eq!(eager.metadata().scheme(), UpdateScheme::Eager);
        let lazy = SecureEpdSystem::for_scheme(cfg, DrainScheme::HorusDlm);
        assert_eq!(lazy.metadata().scheme(), UpdateScheme::Lazy);
    }
}
