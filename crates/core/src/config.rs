//! System configuration (the paper's Table I, plus sweep knobs).

use crate::domain::PersistenceDomain;
use horus_cache::HierarchyConfig;
use horus_crypto::Aes128;
use horus_metadata::{CryptoTimingConfig, MetadataCacheConfig, UpdateScheme};
use horus_nvm::{AddressMap, NvmConfig};
use serde::{Deserialize, Serialize};

/// Complete configuration of a secure EPD system.
///
/// [`SystemConfig::paper_default`] reproduces Table I; the evaluation
/// sweeps build variants via [`SystemConfig::with_llc_bytes`]. All keys
/// are derived deterministically from [`seed`](Self::seed) so experiments
/// are reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The processor cache hierarchy to protect.
    pub hierarchy: HierarchyConfig,
    /// NVM device and channel parameters.
    pub nvm: NvmConfig,
    /// On-chip crypto-engine timing.
    pub crypto: CryptoTimingConfig,
    /// Security metadata cache sizes.
    pub metadata_caches: MetadataCacheConfig,
    /// Run-time Merkle-tree update scheme.
    pub scheme: UpdateScheme,
    /// Protected data size in bytes (Table I: 32 GB).
    pub data_bytes: u64,
    /// Where the persistence boundary sits (EPD by default; ADR and BBB
    /// model the paper's related-work design points).
    pub domain: PersistenceDomain,
    /// Number of CHV rotation slots (wear levelling): each draining
    /// episode writes a different slot of the reserved vault region, so
    /// vault cells wear `slots`x slower. 1 = the paper's fixed vault.
    pub chv_rotation_slots: u64,
    /// Key-derivation seed (reproducibility).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's Table I configuration (lazy run-time updates, the
    /// scheme EPD systems would choose for run-time performance).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            hierarchy: HierarchyConfig::paper_default(),
            nvm: NvmConfig::paper_default(),
            crypto: CryptoTimingConfig::paper_default(),
            metadata_caches: MetadataCacheConfig::paper_default(),
            scheme: UpdateScheme::Lazy,
            data_bytes: 32 << 30,
            domain: PersistenceDomain::Epd,
            chv_rotation_slots: 1,
            seed: 0x4852_5355, // "HORU"
        }
    }

    /// Table I with a different LLC size (Figures 14–16 sweeps).
    #[must_use]
    pub fn with_llc_bytes(llc_bytes: u64) -> Self {
        Self {
            hierarchy: HierarchyConfig::with_llc_bytes(llc_bytes),
            ..Self::paper_default()
        }
    }

    /// A scaled-down configuration for unit tests and doctests: a few-KB
    /// hierarchy over 16 MB of data, with proportionally small metadata
    /// caches. Semantics identical, run time negligible.
    #[must_use]
    pub fn small_test() -> Self {
        Self {
            hierarchy: HierarchyConfig {
                l1_bytes: 8 * 64,
                l1_ways: 2,
                l2_bytes: 16 * 64,
                l2_ways: 2,
                llc_bytes: 64 * 64,
                llc_ways: 4,
            },
            nvm: NvmConfig::paper_default(),
            crypto: CryptoTimingConfig::paper_default(),
            metadata_caches: MetadataCacheConfig {
                counter_cache_bytes: 16 * 64,
                mac_cache_bytes: 16 * 64,
                tree_cache_bytes: 16 * 64,
                ways: 2,
                policy: horus_cache::ReplacementPolicy::Lru,
            },
            scheme: UpdateScheme::Lazy,
            data_bytes: 16 << 20,
            domain: PersistenceDomain::Epd,
            chv_rotation_slots: 1,
            seed: 0x5445_5354, // "TEST"
        }
    }

    /// Builds the physical address map implied by this configuration:
    /// CHV sized by the paper's formula (§IV-D,
    /// `1.25 x cache + 1.125 x metadata cache`) with a 2x safety factor
    /// for the DLM supergroup padding and drained metadata.
    #[must_use]
    pub fn address_map(&self) -> AddressMap {
        let chv_blocks = self.chv_slot_blocks() * self.chv_rotation_slots.max(1);
        let shadow_blocks = self.metadata_caches.total_lines() * 2 + 8;
        AddressMap::new(self.data_bytes, chv_blocks, shadow_blocks)
    }

    /// Blocks reserved per CHV rotation slot (one episode's worst case).
    #[must_use]
    pub fn chv_slot_blocks(&self) -> u64 {
        let drainable = self.hierarchy.total_lines() + self.metadata_caches.total_lines();
        drainable * 2 + 64
    }

    fn derive_key(&self, purpose: u64) -> [u8; 16] {
        // Deterministic key derivation: AES(seed-key, purpose) — not a
        // KDF for production use, but cryptographically distinct keys for
        // the simulator.
        let mut kd = [0u8; 16];
        kd[..8].copy_from_slice(&self.seed.to_le_bytes());
        kd[8..].copy_from_slice(&0x4b44_4659_u64.to_le_bytes()); // "KDFY"
        let aes = Aes128::new(&kd);
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&purpose.to_le_bytes());
        aes.encrypt_block(&input)
    }

    /// The data-encryption key (counter-mode pads for data blocks).
    #[must_use]
    pub fn data_key(&self) -> [u8; 16] {
        self.derive_key(1)
    }

    /// The data-MAC key.
    #[must_use]
    pub fn mac_key(&self) -> [u8; 16] {
        self.derive_key(2)
    }

    /// The Merkle-tree key.
    #[must_use]
    pub fn tree_key(&self) -> [u8; 16] {
        self.derive_key(3)
    }

    /// The CHV encryption key (drain-time pads).
    #[must_use]
    pub fn chv_key(&self) -> [u8; 16] {
        self.derive_key(4)
    }

    /// The CHV MAC key.
    #[must_use]
    pub fn chv_mac_key(&self) -> [u8; 16] {
        self.derive_key(5)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A serializable summary of the configuration, printed by the
/// `repro-config` harness to reproduce Table I.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ConfigSummary {
    /// L1/L2/LLC sizes in bytes.
    pub hierarchy_bytes: (u64, u64, u64),
    /// Total drainable cache lines.
    pub total_lines: u64,
    /// NVM size in bytes.
    pub data_bytes: u64,
    /// (read, write) latency in nanoseconds.
    pub nvm_latency_ns: (f64, f64),
    /// (AES, hash) latency in cycles.
    pub engine_latency_cycles: (u64, u64),
    /// (counter, MAC, tree) metadata cache sizes in bytes.
    pub metadata_cache_bytes: (u64, u64, u64),
    /// Stored Merkle-tree levels over NVM.
    pub bmt_levels: usize,
}

impl ConfigSummary {
    /// Summarizes a configuration.
    #[must_use]
    pub fn of(cfg: &SystemConfig) -> Self {
        let map = cfg.address_map();
        Self {
            hierarchy_bytes: (
                cfg.hierarchy.l1_bytes,
                cfg.hierarchy.l2_bytes,
                cfg.hierarchy.llc_bytes,
            ),
            total_lines: cfg.hierarchy.total_lines(),
            data_bytes: cfg.data_bytes,
            nvm_latency_ns: (cfg.nvm.read_ns, cfg.nvm.write_ns),
            engine_latency_cycles: (cfg.crypto.aes_latency.0, cfg.crypto.hash_latency.0),
            metadata_cache_bytes: (
                cfg.metadata_caches.counter_cache_bytes,
                cfg.metadata_caches.mac_cache_bytes,
                cfg.metadata_caches.tree_cache_bytes,
            ),
            bmt_levels: map.bmt_levels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.hierarchy.llc_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.data_bytes, 32 << 30);
        assert_eq!(cfg.metadata_caches.mac_cache_bytes, 512 * 1024);
        assert_eq!(cfg.hierarchy.total_lines(), 295_936);
    }

    #[test]
    fn keys_are_distinct_and_deterministic() {
        let cfg = SystemConfig::paper_default();
        let keys = [
            cfg.data_key(),
            cfg.mac_key(),
            cfg.tree_key(),
            cfg.chv_key(),
            cfg.chv_mac_key(),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
        assert_eq!(cfg.data_key(), SystemConfig::paper_default().data_key());
        let other = SystemConfig { seed: 99, ..cfg };
        assert_ne!(other.data_key(), SystemConfig::paper_default().data_key());
    }

    #[test]
    fn chv_fits_the_drainable_state() {
        for cfg in [SystemConfig::paper_default(), SystemConfig::small_test()] {
            let map = cfg.address_map();
            let drainable = cfg.hierarchy.total_lines() + cfg.metadata_caches.total_lines();
            // Worst case CHV usage: every drained block plus an address
            // block and a MAC block per 8 (SLM).
            assert!(map.chv_blocks() >= drainable + 2 * drainable.div_ceil(8));
        }
    }

    #[test]
    fn summary_captures_table1() {
        let s = ConfigSummary::of(&SystemConfig::paper_default());
        assert_eq!(s.nvm_latency_ns, (150.0, 500.0));
        assert_eq!(s.engine_latency_cycles, (40, 160));
        assert_eq!(s.bmt_levels, 8);
        assert_eq!(s.total_lines, 295_936);
    }

    #[test]
    fn llc_sweep_configs_build() {
        for mb in [8u64, 16, 32, 64, 128] {
            let cfg = SystemConfig::with_llc_bytes(mb << 20);
            let _ = cfg.address_map();
            assert_eq!(cfg.hierarchy.llc_bytes, mb << 20);
        }
    }
}
