//! The cache hierarchy vault: layout, drain-time writer, recovery reader
//! (paper §IV-C).
//!
//! The CHV is a reserved NVM region the drain engine *streams* into. For
//! every 8 drained blocks it appends one address block (the 8 original
//! 64-bit addresses, coalesced in the address register); MAC storage
//! granularity depends on the scheme:
//!
//! * **Horus-SLM** (single-level MAC): one MAC block (8 x 8-byte MACs)
//!   per 8 drained blocks;
//! * **Horus-DLM** (double-level MAC): per 8 drained blocks, the 8 MACs
//!   in the first register are hashed into one second-level MAC; a MAC
//!   block of 8 second-level MACs is written per 64 drained blocks
//!   (Figure 10), cutting MAC writes 8x for 12.5% more MAC computations.
//!
//! Each drained block is encrypted with a one-time pad seeded by its CHV
//! slot address and its **drain-counter** value, and MAC'ed over
//! `ciphertext || original address || DC` — so tampering, splicing,
//! replay and truncation all break verification (§IV-C.4).

use horus_crypto::{otp, Aes128, Cmac, Mac64};
use horus_metadata::Platform;
use horus_nvm::Block;
use horus_sim::Cycles;
use serde::{Deserialize, Serialize};

/// MAC storage granularity: the difference between Horus-SLM and
/// Horus-DLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacGranularity {
    /// One stored MAC per drained block (MAC block per 8 blocks).
    SingleLevel,
    /// One stored second-level MAC per 8 drained blocks (MAC block per
    /// 64 blocks).
    DoubleLevel,
}

/// Deterministic placement of data / address / MAC blocks in the CHV.
///
/// SLM groups occupy 10 blocks: 8 data, 1 address, 1 MAC. DLM supergroups
/// occupy 73: 8 x (8 data + 1 address) + 1 MAC.
///
/// ```
/// use horus_core::{ChvLayout, MacGranularity};
/// let l = ChvLayout::new(0x1000, MacGranularity::SingleLevel);
/// assert_eq!(l.data_addr(0), 0x1000);
/// assert_eq!(l.addr_block_addr(0), 0x1000 + 8 * 64);
/// assert_eq!(l.mac_block_addr(0), 0x1000 + 9 * 64);
/// assert_eq!(l.data_addr(8), 0x1000 + 10 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChvLayout {
    base: u64,
    mode: MacGranularity,
}

impl ChvLayout {
    /// Creates a layout rooted at `base` (the CHV region base).
    #[must_use]
    pub fn new(base: u64, mode: MacGranularity) -> Self {
        Self { base, mode }
    }

    /// The MAC granularity.
    #[must_use]
    pub fn mode(&self) -> MacGranularity {
        self.mode
    }

    fn block_at(&self, offset_blocks: u64) -> u64 {
        self.base + offset_blocks * 64
    }

    /// Physical address of the `i`-th drained block's ciphertext.
    #[must_use]
    pub fn data_addr(&self, i: u64) -> u64 {
        match self.mode {
            MacGranularity::SingleLevel => self.block_at((i / 8) * 10 + i % 8),
            MacGranularity::DoubleLevel => {
                let (sg, d) = (i / 64, i % 64);
                self.block_at(sg * 73 + (d / 8) * 9 + d % 8)
            }
        }
    }

    /// Physical address of the address block covering drained block `i`.
    #[must_use]
    pub fn addr_block_addr(&self, i: u64) -> u64 {
        match self.mode {
            MacGranularity::SingleLevel => self.block_at((i / 8) * 10 + 8),
            MacGranularity::DoubleLevel => {
                let (sg, d) = (i / 64, i % 64);
                self.block_at(sg * 73 + (d / 8) * 9 + 8)
            }
        }
    }

    /// The slot of drained block `i` within its address block.
    #[must_use]
    pub fn addr_slot(&self, i: u64) -> usize {
        (i % 8) as usize
    }

    /// Physical address of the MAC block covering drained block `i`.
    #[must_use]
    pub fn mac_block_addr(&self, i: u64) -> u64 {
        match self.mode {
            MacGranularity::SingleLevel => self.block_at((i / 8) * 10 + 9),
            MacGranularity::DoubleLevel => self.block_at((i / 64) * 73 + 72),
        }
    }

    /// The slot within the MAC block: the block's own MAC (SLM) or its
    /// group's second-level MAC (DLM).
    #[must_use]
    pub fn mac_slot(&self, i: u64) -> usize {
        match self.mode {
            MacGranularity::SingleLevel => (i % 8) as usize,
            MacGranularity::DoubleLevel => ((i / 8) % 8) as usize,
        }
    }

    /// Total CHV blocks consumed by an episode of `n` drained blocks
    /// (including partially-filled address/MAC blocks).
    #[must_use]
    pub fn blocks_used(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let addr_blocks = n.div_ceil(8);
        let mac_blocks = match self.mode {
            MacGranularity::SingleLevel => n.div_ceil(8),
            MacGranularity::DoubleLevel => n.div_ceil(64),
        };
        n + addr_blocks + mac_blocks
    }
}

/// The MAC input binding a CHV entry: ciphertext, original address, and
/// the drain-counter value used to encrypt it.
#[must_use]
pub fn entry_mac_input(ciphertext: &Block, orig_addr: u64, dc: u64) -> [u8; 80] {
    let mut msg = [0u8; 80];
    msg[..64].copy_from_slice(ciphertext);
    msg[64..72].copy_from_slice(&orig_addr.to_le_bytes());
    msg[72..80].copy_from_slice(&dc.to_le_bytes());
    msg
}

/// The streaming CHV writer used by the Horus drain engines: owns the
/// coalescing registers (address register, MAC register, and the DLM
/// second-level register).
#[derive(Debug, Clone)]
pub struct ChvWriter {
    layout: ChvLayout,
    aes: Aes128,
    cmac: Cmac,
    count: u64,
    addr_buf: [u64; 8],
    addr_n: usize,
    mac_buf: [Mac64; 8],
    mac_n: usize,
    l2_buf: [Mac64; 8],
    l2_n: usize,
}

fn macs_to_block(macs: &[Mac64; 8], n: usize) -> Block {
    let mut out = [0u8; 64];
    for (i, m) in macs.iter().take(n).enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&m.0);
    }
    out
}

fn addrs_to_block(addrs: &[u64; 8], n: usize) -> Block {
    let mut out = [0u8; 64];
    for (i, a) in addrs.iter().take(n).enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&a.to_le_bytes());
    }
    out
}

impl ChvWriter {
    /// Creates a writer with empty registers.
    #[must_use]
    pub fn new(layout: ChvLayout, chv_key: &[u8; 16], chv_mac_key: &[u8; 16]) -> Self {
        Self {
            layout,
            aes: Aes128::new(chv_key),
            cmac: Cmac::new(chv_mac_key),
            count: 0,
            addr_buf: [0; 8],
            addr_n: 0,
            mac_buf: [Mac64::ZERO; 8],
            mac_n: 0,
            l2_buf: [Mac64::ZERO; 8],
            l2_n: 0,
        }
    }

    /// Number of blocks pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Streams one drained block into the CHV: encrypt with the given
    /// drain-counter value, MAC, coalesce, and write whatever registers
    /// filled up. `kind` attributes the data write (`"chv_data"` for
    /// hierarchy blocks, `"chv_meta"` for drained metadata blocks).
    pub fn push(
        &mut self,
        p: &mut Platform,
        dc: u64,
        orig_addr: u64,
        plaintext: &Block,
        kind: &'static str,
        ready: Cycles,
    ) -> Cycles {
        let i = self.count;
        let slot_addr = self.layout.data_addr(i);
        // Encrypt: OTP seeded by (CHV slot, DC) — unique per §IV-C.1.
        let enc = p.otp_op("chv", ready);
        let ct = otp::encrypt_block_ctr(&self.aes, slot_addr, dc, plaintext);
        let wc = p.nvm.write(slot_addr, ct, kind, enc.done);
        let mut t = wc.start; // stream: next op can issue once accepted

        // MAC over (ciphertext, original address, DC).
        let mc = p.mac_op("chv_entry", enc.done);
        t = t.max(mc.done);
        let mac = self.cmac.mac64(&entry_mac_input(&ct, orig_addr, dc));

        // Address register.
        self.addr_buf[self.addr_n] = orig_addr;
        self.addr_n += 1;
        if self.addr_n == 8 {
            let block = addrs_to_block(&self.addr_buf, 8);
            let c = p
                .nvm
                .write(self.layout.addr_block_addr(i), block, "chv_addr", t);
            t = t.max(c.start);
            self.addr_n = 0;
        }

        // MAC register(s).
        self.mac_buf[self.mac_n] = mac;
        self.mac_n += 1;
        if self.mac_n == 8 {
            let block = macs_to_block(&self.mac_buf, 8);
            match self.layout.mode() {
                MacGranularity::SingleLevel => {
                    let c = p
                        .nvm
                        .write(self.layout.mac_block_addr(i), block, "chv_mac", t);
                    t = t.max(c.start);
                }
                MacGranularity::DoubleLevel => {
                    let mc2 = p.mac_op("chv_l2", t);
                    t = t.max(mc2.done);
                    self.l2_buf[self.l2_n] = self.cmac.mac64(&block);
                    self.l2_n += 1;
                    if self.l2_n == 8 {
                        let l2 = macs_to_block(&self.l2_buf, 8);
                        let c = p.nvm.write(self.layout.mac_block_addr(i), l2, "chv_mac", t);
                        t = t.max(c.start);
                        self.l2_n = 0;
                    }
                }
            }
            self.mac_n = 0;
        }

        self.count += 1;
        t
    }

    /// Flushes partially-filled registers at the end of the episode.
    pub fn finish(&mut self, p: &mut Platform, ready: Cycles) -> Cycles {
        let mut t = ready;
        if self.count == 0 {
            return t;
        }
        let last = self.count - 1;
        if self.addr_n > 0 {
            let block = addrs_to_block(&self.addr_buf, self.addr_n);
            let c = p
                .nvm
                .write(self.layout.addr_block_addr(last), block, "chv_addr", t);
            t = t.max(c.start);
            self.addr_n = 0;
        }
        match self.layout.mode() {
            MacGranularity::SingleLevel => {
                if self.mac_n > 0 {
                    let block = macs_to_block(&self.mac_buf, self.mac_n);
                    let c = p
                        .nvm
                        .write(self.layout.mac_block_addr(last), block, "chv_mac", t);
                    t = t.max(c.start);
                    self.mac_n = 0;
                }
            }
            MacGranularity::DoubleLevel => {
                if self.mac_n > 0 {
                    let block = macs_to_block(&self.mac_buf, self.mac_n);
                    let mc2 = p.mac_op("chv_l2", t);
                    t = t.max(mc2.done);
                    self.l2_buf[self.l2_n] = self.cmac.mac64(&block);
                    self.l2_n += 1;
                    self.mac_n = 0;
                }
                if self.l2_n > 0 {
                    let l2 = macs_to_block(&self.l2_buf, self.l2_n);
                    let c = p
                        .nvm
                        .write(self.layout.mac_block_addr(last), l2, "chv_mac", t);
                    t = t.max(c.start);
                    self.l2_n = 0;
                }
            }
        }
        t.max(p.busy_until())
    }
}

/// Functional read-back of a CHV episode (the recovery path and the
/// attack tests use this).
#[derive(Debug, Clone)]
pub struct ChvReader {
    layout: ChvLayout,
    aes: Aes128,
    cmac: Cmac,
}

/// A verified, decrypted CHV entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChvEntry {
    /// The block's original (pre-drain) physical address.
    pub orig_addr: u64,
    /// The decrypted contents.
    pub data: Block,
}

impl ChvReader {
    /// Creates a reader with the episode's keys.
    #[must_use]
    pub fn new(layout: ChvLayout, chv_key: &[u8; 16], chv_mac_key: &[u8; 16]) -> Self {
        Self {
            layout,
            aes: Aes128::new(chv_key),
            cmac: Cmac::new(chv_mac_key),
        }
    }

    /// The layout being read.
    #[must_use]
    pub fn layout(&self) -> &ChvLayout {
        &self.layout
    }

    /// Reads and verifies entry `i` (drain-counter value `dc`), issuing
    /// timed reads chained after `ready`. Returns the entry and the read
    /// completion time, or `None` if verification failed.
    ///
    /// DLM note: second-level MACs cover groups of 8, so DLM verification
    /// goes through [`read_group_dlm`](Self::read_group_dlm); this
    /// method performs SLM verification only.
    ///
    /// # Panics
    ///
    /// Panics if called on a double-level layout.
    pub fn read_entry_slm(
        &self,
        p: &mut Platform,
        i: u64,
        dc: u64,
        ready: Cycles,
    ) -> (Option<ChvEntry>, Cycles) {
        assert_eq!(
            self.layout.mode(),
            MacGranularity::SingleLevel,
            "SLM entry read on DLM layout"
        );
        let (ct, c1) = p.nvm.read(self.layout.data_addr(i), "chv_data", ready);
        let (ablk, c2) = p
            .nvm
            .read(self.layout.addr_block_addr(i), "chv_addr", c1.done);
        let (mblk, c3) = p
            .nvm
            .read(self.layout.mac_block_addr(i), "chv_mac", c2.done);
        let mut t = c3.done;
        let orig_addr = read_u64(&ablk, self.layout.addr_slot(i));
        let stored = Mac64(read8(&mblk, self.layout.mac_slot(i)));
        let vc = p.mac_op("chv_verify", t);
        t = vc.done;
        let mac = self.cmac.mac64(&entry_mac_input(&ct, orig_addr, dc));
        if mac != stored {
            return (None, t);
        }
        let dec = p.otp_op("chv", t);
        t = dec.done;
        let data = otp::decrypt_block_ctr(&self.aes, self.layout.data_addr(i), dc, &ct);
        (Some(ChvEntry { orig_addr, data }), t)
    }

    /// Reads and verifies one SLM group of up to 8 entries starting at
    /// entry `base_i` — the address and MAC blocks are read once and
    /// shared by the group, as the recovery walk does. Returns `None` if
    /// any member fails verification.
    ///
    /// # Panics
    ///
    /// Panics if called on a double-level layout, if `base_i` is not
    /// 8-aligned, or if `len` is outside `1..=8`.
    pub fn read_group_slm(
        &self,
        p: &mut Platform,
        base_i: u64,
        len: usize,
        dc_of: impl Fn(u64) -> u64,
        ready: Cycles,
    ) -> (Option<Vec<ChvEntry>>, Cycles) {
        assert_eq!(
            self.layout.mode(),
            MacGranularity::SingleLevel,
            "SLM group read on DLM layout"
        );
        assert_eq!(base_i % 8, 0, "SLM groups are 8-aligned");
        assert!((1..=8).contains(&len), "group length out of range");
        let mut t = ready;
        let mut cts = Vec::with_capacity(len);
        for k in 0..len as u64 {
            let (ct, c) = p.nvm.read(self.layout.data_addr(base_i + k), "chv_data", t);
            t = c.done;
            cts.push(ct);
        }
        let (ablk, ca) = p
            .nvm
            .read(self.layout.addr_block_addr(base_i), "chv_addr", t);
        let (mblk, cm) = p
            .nvm
            .read(self.layout.mac_block_addr(base_i), "chv_mac", ca.done);
        t = cm.done;
        let mut out = Vec::with_capacity(len);
        for (k, ct) in cts.iter().enumerate() {
            let i = base_i + k as u64;
            let orig_addr = read_u64(&ablk, self.layout.addr_slot(i));
            let dc = dc_of(i);
            let stored = Mac64(read8(&mblk, self.layout.mac_slot(i)));
            let vc = p.mac_op("chv_verify", t);
            t = vc.done;
            if self.cmac.mac64(&entry_mac_input(ct, orig_addr, dc)) != stored {
                return (None, t);
            }
            let dec = p.otp_op("chv", t);
            t = dec.done;
            let data = otp::decrypt_block_ctr(&self.aes, self.layout.data_addr(i), dc, ct);
            out.push(ChvEntry { orig_addr, data });
        }
        (Some(out), t)
    }

    /// Reads and verifies one DLM group of up to 8 entries starting at
    /// entry `base_i` (whose drain-counter values are `dc_of(pos)`).
    /// Returns the verified entries, or `None` if the group's
    /// second-level MAC did not match.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-level layout or if `base_i` is not
    /// 8-aligned.
    pub fn read_group_dlm(
        &self,
        p: &mut Platform,
        base_i: u64,
        len: usize,
        dc_of: impl Fn(u64) -> u64,
        ready: Cycles,
    ) -> (Option<Vec<ChvEntry>>, Cycles) {
        self.read_group_dlm_with_mac(p, base_i, len, dc_of, None, ready)
    }

    /// [`read_group_dlm`](Self::read_group_dlm) with an already-fetched
    /// MAC block: a DLM MAC block covers 64 entries (8 groups), so a
    /// sequential recovery walk reads it once per supergroup and keeps it
    /// in a register.
    ///
    /// # Panics
    ///
    /// Same conditions as [`read_group_dlm`](Self::read_group_dlm).
    pub fn read_group_dlm_with_mac(
        &self,
        p: &mut Platform,
        base_i: u64,
        len: usize,
        dc_of: impl Fn(u64) -> u64,
        preloaded_mac_block: Option<Block>,
        ready: Cycles,
    ) -> (Option<Vec<ChvEntry>>, Cycles) {
        assert_eq!(
            self.layout.mode(),
            MacGranularity::DoubleLevel,
            "DLM group read on SLM layout"
        );
        assert_eq!(base_i % 8, 0, "DLM groups are 8-aligned");
        assert!((1..=8).contains(&len), "group length out of range");
        let mut t = ready;
        let mut cts = Vec::with_capacity(len);
        for k in 0..len as u64 {
            let (ct, c) = p.nvm.read(self.layout.data_addr(base_i + k), "chv_data", t);
            t = c.done;
            cts.push(ct);
        }
        let (ablk, ca) = p
            .nvm
            .read(self.layout.addr_block_addr(base_i), "chv_addr", t);
        t = ca.done;
        let mblk = match preloaded_mac_block {
            Some(b) => b,
            None => {
                let (b, cm) = p.nvm.read(self.layout.mac_block_addr(base_i), "chv_mac", t);
                t = cm.done;
                b
            }
        };
        // Recompute the up-to-8 first-level MACs, then the second-level
        // MAC.
        let mut l1 = [Mac64::ZERO; 8];
        let mut entries = Vec::with_capacity(len);
        for (k, ct) in cts.iter().enumerate() {
            let i = base_i + k as u64;
            let orig_addr = read_u64(&ablk, self.layout.addr_slot(i));
            let dc = dc_of(i);
            let vc = p.mac_op("chv_verify", t);
            t = vc.done;
            l1[k] = self.cmac.mac64(&entry_mac_input(ct, orig_addr, dc));
            entries.push((orig_addr, dc, *ct));
        }
        let vc = p.mac_op("chv_l2", t);
        t = vc.done;
        let l2 = self.cmac.mac64(&macs_to_block(&l1, len));
        let stored = Mac64(read8(&mblk, self.layout.mac_slot(base_i)));
        if l2 != stored {
            return (None, t);
        }
        let out = entries
            .into_iter()
            .enumerate()
            .map(|(k, (orig_addr, dc, ct))| {
                let dec = p.otp_op("chv", t);
                t = dec.done;
                let data = otp::decrypt_block_ctr(
                    &self.aes,
                    self.layout.data_addr(base_i + k as u64),
                    dc,
                    &ct,
                );
                ChvEntry { orig_addr, data }
            })
            .collect();
        (Some(out), t)
    }
}

fn read8(block: &Block, slot: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&block[slot * 8..(slot + 1) * 8]);
    out
}

fn read_u64(block: &Block, slot: usize) -> u64 {
    u64::from_le_bytes(read8(block, slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_metadata::Platform;

    const K1: [u8; 16] = [0x31; 16];
    const K2: [u8; 16] = [0x32; 16];

    #[test]
    fn slm_layout_math() {
        let l = ChvLayout::new(0, MacGranularity::SingleLevel);
        assert_eq!(l.data_addr(7), 7 * 64);
        assert_eq!(l.data_addr(8), 10 * 64);
        assert_eq!(l.addr_block_addr(15), (10 + 8) * 64);
        assert_eq!(l.mac_block_addr(15), (10 + 9) * 64);
        assert_eq!(l.addr_slot(13), 5);
        assert_eq!(l.mac_slot(13), 5);
        assert_eq!(l.blocks_used(16), 16 + 2 + 2);
        assert_eq!(l.blocks_used(9), 9 + 2 + 2);
        assert_eq!(l.blocks_used(0), 0);
    }

    #[test]
    fn dlm_layout_math() {
        let l = ChvLayout::new(0, MacGranularity::DoubleLevel);
        assert_eq!(l.data_addr(0), 0);
        assert_eq!(l.data_addr(8), 9 * 64); // second sub-group
        assert_eq!(l.addr_block_addr(0), 8 * 64);
        assert_eq!(l.addr_block_addr(8), 17 * 64);
        assert_eq!(l.mac_block_addr(0), 72 * 64);
        assert_eq!(l.mac_block_addr(63), 72 * 64);
        assert_eq!(l.data_addr(64), 73 * 64);
        assert_eq!(l.mac_slot(0), 0);
        assert_eq!(l.mac_slot(8), 1);
        assert_eq!(l.mac_slot(63), 7);
        assert_eq!(l.blocks_used(64), 64 + 8 + 1);
        assert_eq!(l.blocks_used(65), 65 + 9 + 2);
    }

    #[test]
    fn layouts_never_overlap() {
        for mode in [MacGranularity::SingleLevel, MacGranularity::DoubleLevel] {
            let l = ChvLayout::new(0, mode);
            let mut seen = std::collections::HashSet::new();
            for i in 0..200u64 {
                assert!(seen.insert(l.data_addr(i)), "data {i} overlaps");
            }
            for i in (0..200u64).step_by(8) {
                assert!(seen.insert(l.addr_block_addr(i)), "addr block {i} overlaps");
            }
            let mac_step = if mode == MacGranularity::SingleLevel {
                8
            } else {
                64
            };
            for i in (0..200u64).step_by(mac_step) {
                assert!(seen.insert(l.mac_block_addr(i)), "mac block {i} overlaps");
            }
        }
    }

    #[test]
    fn slm_write_read_roundtrip() {
        let layout = ChvLayout::new(4096, MacGranularity::SingleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        let blocks: Vec<(u64, Block)> = (0..19u64)
            .map(|i| (i * 0x4000, [i as u8 + 1; 64]))
            .collect();
        let mut t = Cycles::ZERO;
        for (i, (addr, data)) in blocks.iter().enumerate() {
            t = w.push(&mut p, 100 + i as u64, *addr, data, "chv_data", t);
        }
        w.finish(&mut p, t);
        assert_eq!(w.count(), 19);
        assert_eq!(p.nvm.stats().get("mem.write.chv_data"), 19);
        assert_eq!(p.nvm.stats().get("mem.write.chv_addr"), 3);
        assert_eq!(p.nvm.stats().get("mem.write.chv_mac"), 3);

        let r = ChvReader::new(layout, &K1, &K2);
        for (i, (addr, data)) in blocks.iter().enumerate() {
            let (e, _) = r.read_entry_slm(&mut p, i as u64, 100 + i as u64, Cycles::ZERO);
            let e = e.expect("entry verifies");
            assert_eq!(e.orig_addr, *addr);
            assert_eq!(e.data, *data);
        }
    }

    #[test]
    fn slm_wrong_dc_fails() {
        let layout = ChvLayout::new(0, MacGranularity::SingleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        w.push(&mut p, 7, 0x1000, &[9u8; 64], "chv_data", Cycles::ZERO);
        w.finish(&mut p, Cycles::ZERO);
        let r = ChvReader::new(layout, &K1, &K2);
        let (ok, _) = r.read_entry_slm(&mut p, 0, 7, Cycles::ZERO);
        assert!(ok.is_some());
        let (bad, _) = r.read_entry_slm(&mut p, 0, 8, Cycles::ZERO);
        assert!(bad.is_none(), "a replayed/shifted DC must fail");
    }

    #[test]
    fn dlm_write_read_roundtrip_with_partial_group() {
        let layout = ChvLayout::new(0, MacGranularity::DoubleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        // 70 entries: one full supergroup + partial (6 entries).
        let blocks: Vec<(u64, Block)> = (0..70u64)
            .map(|i| (i * 0x2000, [(i % 251) as u8; 64]))
            .collect();
        let mut t = Cycles::ZERO;
        for (i, (addr, data)) in blocks.iter().enumerate() {
            t = w.push(&mut p, 1000 + i as u64, *addr, data, "chv_data", t);
        }
        w.finish(&mut p, t);
        assert_eq!(p.nvm.stats().get("mem.write.chv_mac"), 2);
        assert_eq!(p.nvm.stats().get("mem.write.chv_addr"), 9);

        let r = ChvReader::new(layout, &K1, &K2);
        let mut restored = Vec::new();
        let mut base = 0u64;
        while base < 70 {
            let len = (70 - base).min(8) as usize;
            let (es, _) = r.read_group_dlm(&mut p, base, len, |i| 1000 + i, Cycles::ZERO);
            restored.extend(es.expect("group verifies"));
            base += 8;
        }
        assert_eq!(restored.len(), 70);
        for (e, (addr, data)) in restored.iter().zip(blocks.iter()) {
            assert_eq!(e.orig_addr, *addr);
            assert_eq!(e.data, *data);
        }
    }

    #[test]
    fn slm_group_read_matches_entry_read() {
        let layout = ChvLayout::new(0, MacGranularity::SingleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        let mut t = Cycles::ZERO;
        for i in 0..13u64 {
            t = w.push(
                &mut p,
                i + 50,
                i * 0x4000,
                &[(i + 1) as u8; 64],
                "chv_data",
                t,
            );
        }
        w.finish(&mut p, t);
        let r = ChvReader::new(layout, &K1, &K2);
        // Group read and per-entry read must agree entry for entry.
        let mut base = 0u64;
        let mut grouped = Vec::new();
        while base < 13 {
            let len = (13 - base).min(8) as usize;
            let (es, _) = r.read_group_slm(&mut p, base, len, |i| i + 50, Cycles::ZERO);
            grouped.extend(es.expect("group verifies"));
            base += 8;
        }
        for (i, g) in grouped.iter().enumerate() {
            let (e, _) = r.read_entry_slm(&mut p, i as u64, i as u64 + 50, Cycles::ZERO);
            assert_eq!(*g, e.expect("entry verifies"));
        }
    }

    #[test]
    fn slm_group_read_detects_member_tamper() {
        let layout = ChvLayout::new(0, MacGranularity::SingleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        let mut t = Cycles::ZERO;
        for i in 0..8u64 {
            t = w.push(&mut p, i + 1, i * 0x1000, &[i as u8; 64], "chv_data", t);
        }
        w.finish(&mut p, t);
        let victim = layout.data_addr(6);
        let mut ct = p.nvm.device().read_block(victim);
        ct[33] ^= 4;
        p.nvm.device_mut().write_block(victim, ct);
        let r = ChvReader::new(layout, &K1, &K2);
        let (res, _) = r.read_group_slm(&mut p, 0, 8, |i| i + 1, Cycles::ZERO);
        assert!(res.is_none(), "a tampered member must fail the group");
    }

    #[test]
    fn dlm_preloaded_mac_block_skips_the_read() {
        let layout = ChvLayout::new(0, MacGranularity::DoubleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        let mut t = Cycles::ZERO;
        for i in 0..8u64 {
            t = w.push(&mut p, i + 1, i * 0x1000, &[1u8; 64], "chv_data", t);
        }
        w.finish(&mut p, t);
        let r = ChvReader::new(layout, &K1, &K2);
        let mac_block = p.nvm.device().read_block(layout.mac_block_addr(0));
        let before = p.nvm.stats().get("mem.read.chv_mac");
        let (res, _) =
            r.read_group_dlm_with_mac(&mut p, 0, 8, |i| i + 1, Some(mac_block), Cycles::ZERO);
        assert!(res.is_some());
        assert_eq!(
            p.nvm.stats().get("mem.read.chv_mac"),
            before,
            "no extra MAC-block read"
        );
    }

    #[test]
    fn dlm_detects_tampered_member() {
        let layout = ChvLayout::new(0, MacGranularity::DoubleLevel);
        let mut p = Platform::paper_default();
        let mut w = ChvWriter::new(layout, &K1, &K2);
        let mut t = Cycles::ZERO;
        for i in 0..8u64 {
            t = w.push(&mut p, i + 1, i * 0x1000, &[i as u8; 64], "chv_data", t);
        }
        w.finish(&mut p, t);
        // Flip one bit in the 3rd member's ciphertext.
        let victim = layout.data_addr(2);
        let mut ct = p.nvm.device().read_block(victim);
        ct[10] ^= 0x80;
        p.nvm.device_mut().write_block(victim, ct);
        let r = ChvReader::new(layout, &K1, &K2);
        let (res, _) = r.read_group_dlm(&mut p, 0, 8, |i| i + 1, Cycles::ZERO);
        assert!(
            res.is_none(),
            "second-level MAC must catch a tampered member"
        );
    }

    #[test]
    fn mac_writes_are_8x_fewer_in_dlm() {
        let n = 512u64;
        let mut counts = Vec::new();
        for mode in [MacGranularity::SingleLevel, MacGranularity::DoubleLevel] {
            let layout = ChvLayout::new(0, mode);
            let mut p = Platform::paper_default();
            let mut w = ChvWriter::new(layout, &K1, &K2);
            let mut t = Cycles::ZERO;
            for i in 0..n {
                t = w.push(&mut p, i + 1, i * 0x1000, &[1u8; 64], "chv_data", t);
            }
            w.finish(&mut p, t);
            counts.push((p.nvm.stats().get("mem.write.chv_mac"), p.total_mac_ops()));
        }
        assert_eq!(
            counts[0].0,
            counts[1].0 * 8,
            "DLM writes 8x fewer MAC blocks"
        );
        // DLM computes 1.125x the MACs (one extra per 8).
        assert_eq!(counts[1].1, counts[0].1 + n / 8);
    }
}
