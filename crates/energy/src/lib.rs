//! Drain-energy and battery-sizing models (paper §V-G, Tables II–III).
//!
//! In an eADR-style EPD system the whole platform stays powered while
//! the cache hierarchy drains, so drain energy is dominated by
//! *processor* energy — i.e. by draining **time** — plus the per-access
//! NVM energies. The paper models the processor with McPAT; this crate
//! substitutes a constant platform power (the behaviour McPAT's numbers
//! reduce to over a fixed-work drain window), with per-access PCM
//! energies of 531.8 nJ/write and 5.5 nJ/read from Hoseinzadeh et al.,
//! as in the paper.
//!
//! Battery volume follows the paper's BBB-style estimate: a super-
//! capacitor stores ~1e-4 Wh/cm³ and a lithium thin-film battery
//! ~1e-2 Wh/cm³.
//!
//! # Example
//!
//! ```
//! use horus_energy::{Battery, DrainEnergyModel};
//! use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
//!
//! let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
//! sys.write(0, [1u8; 64]).unwrap();
//! let report = sys.crash_and_drain(DrainScheme::HorusSlm);
//! let energy = DrainEnergyModel::paper_default().drain_energy(&report);
//! let volume = Battery::super_capacitor().volume_cm3(energy.total_j);
//! assert!(volume > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use horus_core::DrainReport;
use serde::{Deserialize, Serialize};

/// Energy parameters for the drain window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainEnergyModel {
    /// Average platform (processor + uncore) power while draining, in
    /// watts. The paper's McPAT-derived processor energies correspond to
    /// a constant-power drain; 170 W reproduces Table II's magnitudes
    /// for a single-socket server part.
    pub processor_watts: f64,
    /// Energy of one NVM write, in nanojoules (paper: 531.8 nJ).
    pub nvm_write_nj: f64,
    /// Energy of one NVM read, in nanojoules (paper: 5.5 nJ).
    pub nvm_read_nj: f64,
}

impl DrainEnergyModel {
    /// The paper's parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            processor_watts: 170.0,
            nvm_write_nj: 531.8,
            nvm_read_nj: 5.5,
        }
    }

    /// Computes the Table II energy breakdown for one drain.
    #[must_use]
    pub fn drain_energy(&self, report: &DrainReport) -> EnergyBreakdown {
        let processor_j = self.processor_watts * report.seconds;
        let write_j = report.writes as f64 * self.nvm_write_nj * 1e-9;
        let read_j = report.reads as f64 * self.nvm_read_nj * 1e-9;
        EnergyBreakdown {
            scheme: report.scheme.clone(),
            processor_j,
            write_j,
            read_j,
            total_j: processor_j + write_j + read_j,
        }
    }
}

impl Default for DrainEnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// The drain scheme's name.
    pub scheme: String,
    /// Processor energy in joules.
    pub processor_j: f64,
    /// NVM write energy in joules.
    pub write_j: f64,
    /// NVM read energy in joules.
    pub read_j: f64,
    /// Total drain energy in joules.
    pub total_j: f64,
}

/// A back-up energy source technology (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Technology name.
    pub name: &'static str,
    /// Usable energy density in watt-hours per cm³.
    pub energy_density_wh_cm3: f64,
}

impl Battery {
    /// Super-capacitor bank: 1e-4 Wh/cm³.
    #[must_use]
    pub fn super_capacitor() -> Self {
        Self {
            name: "SuperCap",
            energy_density_wh_cm3: 1e-4,
        }
    }

    /// Lithium thin-film battery: 1e-2 Wh/cm³.
    #[must_use]
    pub fn lithium_thin_film() -> Self {
        Self {
            name: "Li-thin",
            energy_density_wh_cm3: 1e-2,
        }
    }

    /// The volume required to hold `energy_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `energy_j` is negative or not finite.
    #[must_use]
    pub fn volume_cm3(&self, energy_j: f64) -> f64 {
        assert!(
            energy_j.is_finite() && energy_j >= 0.0,
            "energy must be non-negative"
        );
        (energy_j / 3600.0) / self.energy_density_wh_cm3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_sim::Stats;

    fn report(seconds: f64, reads: u64, writes: u64) -> DrainReport {
        DrainReport {
            scheme: "test".into(),
            flushed_blocks: writes,
            metadata_blocks: 0,
            cycles: (seconds * 4e9) as u64,
            seconds,
            reads,
            writes,
            mac_ops: 0,
            otp_ops: 0,
            stats: Stats::new(),
            utilization: None,
            critical_path: None,
        }
    }

    #[test]
    fn energy_breakdown_arithmetic() {
        let m = DrainEnergyModel {
            processor_watts: 100.0,
            nvm_write_nj: 500.0,
            nvm_read_nj: 5.0,
        };
        let e = m.drain_energy(&report(0.01, 1_000_000, 2_000_000));
        assert!((e.processor_j - 1.0).abs() < 1e-12);
        assert!((e.write_j - 1.0).abs() < 1e-12);
        assert!((e.read_j - 0.005).abs() < 1e-12);
        assert!((e.total_j - 2.005).abs() < 1e-12);
    }

    #[test]
    fn table3_battery_formula_matches_paper() {
        // The paper's Base-LU row: 11.07 J -> 30.7 cm^3 SuperCap,
        // 0.31 cm^3 Li-thin.
        let sc = Battery::super_capacitor().volume_cm3(11.07);
        assert!((sc - 30.75).abs() < 0.1, "{sc}");
        let li = Battery::lithium_thin_film().volume_cm3(11.07);
        assert!((li - 0.3075).abs() < 0.001, "{li}");
    }

    #[test]
    fn zero_energy_zero_volume() {
        assert_eq!(Battery::super_capacitor().volume_cm3(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        let _ = Battery::super_capacitor().volume_cm3(-1.0);
    }

    #[test]
    fn processor_energy_dominates_for_long_drains() {
        let m = DrainEnergyModel::paper_default();
        let e = m.drain_energy(&report(0.05, 1_500_000, 1_500_000));
        assert!(e.processor_j > e.write_j + e.read_j);
    }
}
