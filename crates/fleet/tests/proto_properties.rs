//! Property tests on the wire protocol: any job spec the harness can
//! express survives a trip through the fleet's line-delimited JSON
//! frames with its content key — and therefore its cache identity and
//! merge position — intact.

use horus_fleet::proto::{decode, encode};
use horus_fleet::{Request, Response};
use horus_harness::{JobOutcome, JobSpec};
use horus_workload::FillPattern;
use proptest::prelude::*;

use horus_core::{DrainScheme, SystemConfig};

fn arb_scheme() -> impl Strategy<Value = DrainScheme> {
    prop::sample::select(DrainScheme::ALL.to_vec())
}

fn arb_pattern() -> impl Strategy<Value = FillPattern> {
    (any::<bool>(), 64u64..1 << 20, 0u64..1 << 30).prop_map(|(dense, min_stride, base)| {
        if dense {
            FillPattern::DenseSequential { base: base & !63 }
        } else {
            FillPattern::StridedSparse { min_stride }
        }
    })
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        arb_scheme(),
        arb_pattern(),
        // Power-of-two megabyte counts: cache geometry requires a
        // power-of-two set count.
        prop::sample::select(vec![1u64, 2, 4, 8, 16, 32]),
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(scheme, pattern, llc_mb, seed, recover, probe)| {
            let mut cfg = SystemConfig::with_llc_bytes(llc_mb << 20);
            cfg.seed = seed;
            let mut spec = JobSpec::drain(&cfg, scheme, pattern);
            spec.recover = recover;
            spec.probe = probe;
            spec
        })
}

/// Arbitrary bytes forced into a string — exercises control characters,
/// quotes, backslashes, and invalid-UTF-8 replacement chars.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    /// Specs cross the wire losslessly in the direction a submitter
    /// uses them: inside a `Submit` request.
    #[test]
    fn any_spec_roundtrips_through_submit(specs in prop::collection::vec(arb_spec(), 0..8)) {
        let keys: Vec<String> = specs.iter().map(JobSpec::key).collect();
        let frame = encode(&Request::Submit { specs: specs.clone() }).expect("encode");
        prop_assert_eq!(frame.matches('\n').count(), 1, "exactly one frame");
        let back: Request = decode(&frame).expect("decode");
        let Request::Submit { specs: rx } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(&rx, &specs);
        let rx_keys: Vec<String> = rx.iter().map(JobSpec::key).collect();
        prop_assert_eq!(rx_keys, keys, "content keys survive the wire");
    }

    /// The merged plan crosses back with per-outcome payloads intact,
    /// including panic messages with hostile content.
    #[test]
    fn plan_done_roundtrips(plan in any::<u64>(), message in arb_text()) {
        let msg = Response::PlanDone {
            plan,
            outcomes: vec![JobOutcome::Panicked { message: message.clone() }],
        };
        let back: Response = decode(&encode(&msg).expect("encode")).expect("decode");
        let Response::PlanDone { plan: p, outcomes } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(p, plan);
        prop_assert_eq!(outcomes, vec![JobOutcome::Panicked { message }]);
    }

    /// Arbitrary junk never panics the decoder — a hostile or corrupt
    /// peer produces an `Err`, not a dead coordinator.
    #[test]
    fn garbage_never_panics_the_decoder(junk in arb_text()) {
        let _ = decode::<Request>(&junk);
        let _ = decode::<Response>(&junk);
    }
}
