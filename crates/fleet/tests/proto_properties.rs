//! Property tests on the wire protocol: any job spec the harness can
//! express survives a trip through the fleet's line-delimited JSON
//! frames with its content key — and therefore its cache identity and
//! merge position — intact.

use horus_fleet::proto::{decode, encode, LeasedJob, ProtoSpanContext, ProtoStageStamps};
use horus_fleet::{Request, Response};
use horus_harness::{JobOutcome, JobSpec};
use horus_workload::FillPattern;
use proptest::prelude::*;

use horus_core::{DrainScheme, SystemConfig};

fn arb_scheme() -> impl Strategy<Value = DrainScheme> {
    prop::sample::select(DrainScheme::ALL.to_vec())
}

fn arb_pattern() -> impl Strategy<Value = FillPattern> {
    (any::<bool>(), 64u64..1 << 20, 0u64..1 << 30).prop_map(|(dense, min_stride, base)| {
        if dense {
            FillPattern::DenseSequential { base: base & !63 }
        } else {
            FillPattern::StridedSparse { min_stride }
        }
    })
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        arb_scheme(),
        arb_pattern(),
        // Power-of-two megabyte counts: cache geometry requires a
        // power-of-two set count.
        prop::sample::select(vec![1u64, 2, 4, 8, 16, 32]),
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(scheme, pattern, llc_mb, seed, recover, probe)| {
            let mut cfg = SystemConfig::with_llc_bytes(llc_mb << 20);
            cfg.seed = seed;
            let mut spec = JobSpec::drain(&cfg, scheme, pattern);
            spec.recover = recover;
            spec.probe = probe;
            spec
        })
}

/// Arbitrary bytes forced into a string — exercises control characters,
/// quotes, backslashes, and invalid-UTF-8 replacement chars.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Finite, non-negative coordinator-relative milliseconds.
fn arb_ms() -> impl Strategy<Value = f64> {
    any::<f64>().prop_map(|unit| unit * 1.0e9)
}

/// An optional correlation trace id (16 lowercase hex chars when
/// present, as [`horus_obs::span::mint_trace_id`] emits them).
fn arb_trace() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), any::<u64>())
        .prop_map(|(present, bits)| present.then(|| format!("{bits:016x}")))
}

/// An optional trace context as the coordinator mints it on a lease.
fn arb_context() -> impl Strategy<Value = Option<ProtoSpanContext>> {
    (any::<bool>(), any::<u64>(), arb_ms(), arb_ms(), arb_trace()).prop_map(
        |(present, plan, queued_ms, leased_ms, trace)| {
            present.then_some(ProtoSpanContext {
                plan,
                queued_ms,
                leased_ms,
                trace,
            })
        },
    )
}

proptest! {
    /// Specs cross the wire losslessly in the direction a submitter
    /// uses them: inside a `Submit` request.
    #[test]
    fn any_spec_roundtrips_through_submit(
        specs in prop::collection::vec(arb_spec(), 0..8),
        trace in arb_trace(),
    ) {
        let keys: Vec<String> = specs.iter().map(JobSpec::key).collect();
        let frame = encode(&Request::Submit { specs: specs.clone(), trace: trace.clone() })
            .expect("encode");
        prop_assert_eq!(frame.matches('\n').count(), 1, "exactly one frame");
        if trace.is_none() {
            prop_assert!(!frame.contains("\"trace\""), "absent trace adds no key: {}", frame);
        }
        let back: Request = decode(&frame).expect("decode");
        let Request::Submit { specs: rx, trace: rx_trace } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(&rx, &specs);
        prop_assert_eq!(&rx_trace, &trace, "trace survives the wire");
        let rx_keys: Vec<String> = rx.iter().map(JobSpec::key).collect();
        prop_assert_eq!(rx_keys, keys, "content keys survive the wire");
    }

    /// The merged plan crosses back with per-outcome payloads intact,
    /// including panic messages with hostile content.
    #[test]
    fn plan_done_roundtrips(plan in any::<u64>(), message in arb_text()) {
        let msg = Response::PlanDone {
            plan,
            outcomes: vec![JobOutcome::Panicked { message: message.clone() }],
        };
        let back: Response = decode(&encode(&msg).expect("encode")).expect("decode");
        let Response::PlanDone { plan: p, outcomes } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(p, plan);
        prop_assert_eq!(outcomes, vec![JobOutcome::Panicked { message }]);
    }

    /// Arbitrary junk never panics the decoder — a hostile or corrupt
    /// peer produces an `Err`, not a dead coordinator.
    #[test]
    fn garbage_never_panics_the_decoder(junk in arb_text()) {
        let _ = decode::<Request>(&junk);
        let _ = decode::<Response>(&junk);
    }

    /// A leased job's trace context — present or absent — round-trips
    /// through the `Jobs` frame, and an absent context leaves the frame
    /// free of span keys entirely (the pre-span wire shape).
    #[test]
    fn span_context_roundtrips_through_jobs(spec in arb_spec(), job in any::<u64>(), span in arb_context()) {
        let msg = Response::Jobs {
            leases: vec![LeasedJob { job, spec, span: span.clone() }],
        };
        let frame = encode(&msg).expect("encode");
        if span.is_none() {
            prop_assert!(!frame.contains("\"span\""), "absent context adds no key: {frame}");
        }
        let back: Response = decode(&frame).expect("decode");
        let Response::Jobs { leases } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(leases.len(), 1);
        prop_assert_eq!(&leases[0].span, &span);
        prop_assert_eq!(leases[0].job, job);
    }

    /// A worker's stage stamps round-trip through `Push`, and the
    /// span-less push keeps the pre-span wire shape.
    #[test]
    fn stage_stamps_roundtrip_through_push(
        worker in any::<u64>(),
        job in any::<u64>(),
        present in any::<bool>(),
        executing_ms in arb_ms(),
        pushed_ms in arb_ms(),
    ) {
        let span = present.then_some(ProtoStageStamps { executing_ms, pushed_ms });
        let msg = Request::Push {
            worker,
            job,
            outcome: JobOutcome::Panicked { message: "x".to_owned() },
            profile: None,
            span: span.clone(),
        };
        let frame = encode(&msg).expect("encode");
        if span.is_none() {
            prop_assert!(!frame.contains("\"span\""), "absent stamps add no key: {frame}");
        }
        let back: Request = decode(&frame).expect("decode");
        let Request::Push { span: rx, worker: w, job: j, .. } = back else {
            return Err(TestCaseError::fail("wrong variant"));
        };
        prop_assert_eq!(rx, span);
        prop_assert_eq!((w, j), (worker, job));
    }

    /// Garbage spliced into the span field of an otherwise-valid frame
    /// never panics the decoder: it either fails to parse (`Err`) or
    /// parses to something typed — a hostile worker cannot take the
    /// coordinator down through the trace context.
    #[test]
    fn garbage_span_fields_never_panic_the_decoder(spec in arb_spec(), junk in arb_text()) {
        let msg = Response::Jobs {
            leases: vec![LeasedJob {
                job: 7,
                spec,
                span: Some(ProtoSpanContext { plan: 1, queued_ms: 2.0, leased_ms: 3.0, trace: None }),
            }],
        };
        let frame = encode(&msg).expect("encode");
        let start = frame.find("\"span\":").expect("span key present") + "\"span\":".len();
        let mangled = format!("{}{}\n", &frame[..start], junk.replace('\n', " "));
        let _ = decode::<Response>(&mangled);
        // Dropping the context value entirely must also stay panic-free.
        let chopped = format!("{}null}}]}}\n", &frame[..start]);
        let _ = decode::<Response>(&chopped);
    }
}
