//! End-to-end fleet tests: a real coordinator listening on a loopback
//! socket, real workers leasing over TCP, and the determinism contract
//! checked the only way that matters — byte-for-byte against a local
//! single-process run of the same specs.

use horus_fleet::proto::{Connection, Request, Response};
use horus_fleet::{run_worker, Coordinator, CoordinatorOptions, FleetBackend, WorkerOptions};
use horus_harness::{Harness, HarnessOptions, JobOutcome, JobSpec, SweepBackend};
use horus_obs::{names, Registry, SampleValue, SpanBook, Stage};
use horus_workload::FillPattern;
use std::sync::Arc;
use std::time::Duration;

use horus_core::{DrainScheme, SystemConfig};

/// Ten cheap, key-distinct jobs: the five schemes over two seeds of the
/// small test configuration.
fn sweep_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for seed_flip in [0u64, 1] {
        let mut cfg = SystemConfig::small_test();
        cfg.seed ^= seed_flip;
        for s in DrainScheme::ALL {
            specs.push(JobSpec::drain(
                &cfg,
                s,
                FillPattern::StridedSparse { min_stride: 16384 },
            ));
        }
    }
    specs
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("horus-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn local_outcomes(specs: &[JobSpec]) -> Vec<JobOutcome> {
    Harness::new(HarnessOptions {
        jobs: Some(2),
        no_cache: true,
        ..HarnessOptions::default()
    })
    .run(specs)
    .outcomes
}

fn fleet_harness(addr: &str) -> Harness {
    Harness::new(HarnessOptions {
        jobs: Some(2),
        no_cache: true, // the coordinator owns the authoritative cache
        backend: Some(Arc::new(FleetBackend::new(addr)) as Arc<dyn SweepBackend>),
        ..HarnessOptions::default()
    })
}

fn as_json(outcomes: &[JobOutcome]) -> String {
    serde_json::to_string(outcomes).expect("outcomes serialize")
}

/// The golden test: a coordinator plus two workers produce output
/// byte-identical to a local `--jobs 2` run, and a rerun of the same
/// plan is answered entirely from the coordinator's cache without the
/// workers executing anything.
#[test]
fn fleet_matches_local_run_and_reruns_hit_the_cache() {
    let dir = temp_dir("golden");
    let coordinator = Coordinator::start(&CoordinatorOptions {
        cache_dir: Some(dir.clone()),
        ..CoordinatorOptions::default()
    })
    .expect("coordinator binds loopback");
    let addr = coordinator.local_addr().to_string();

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let opts = WorkerOptions {
                name: format!("test-worker-{i}"),
                jobs: Some(2),
                ..WorkerOptions::new(addr.clone())
            };
            std::thread::spawn(move || run_worker(&opts))
        })
        .collect();

    let specs = sweep_specs();
    let harness = fleet_harness(&addr);
    let report = harness.run(&specs);
    assert_eq!(report.executed, specs.len(), "fresh plan executes fully");
    assert_eq!(report.cache_hits, 0);

    let local = local_outcomes(&specs);
    assert_eq!(report.outcomes, local);
    assert_eq!(as_json(&report.outcomes), as_json(&local), "byte-identical");

    // Rerun: every key is already committed, so the coordinator answers
    // at submit time — workers never see the plan.
    let rerun = fleet_harness(&addr).run(&specs);
    assert_eq!(rerun.executed, 0, "rerun executes nothing");
    assert_eq!(rerun.cache_hits, specs.len(), "rerun is 100% cache hits");
    let rerun_payload: Vec<_> = rerun
        .outcomes
        .iter()
        .map(|o| match o {
            JobOutcome::Completed { result, cached } => {
                assert!(*cached, "rerun outcomes are marked cached");
                result.clone()
            }
            other => panic!("rerun outcome not completed: {other:?}"),
        })
        .collect();
    let local_payload: Vec<_> = local
        .iter()
        .map(|o| match o {
            JobOutcome::Completed { result, .. } => result.clone(),
            other => panic!("local outcome not completed: {other:?}"),
        })
        .collect();
    assert_eq!(rerun_payload, local_payload);

    // The coordinator's view agrees: both plans merged, queue empty.
    let (_, pending, leased, done, plans_done) = FleetBackend::new(addr.clone())
        .status()
        .expect("status probe");
    assert_eq!((pending, leased), (0, 0));
    assert_eq!(done, 2 * specs.len(), "both plans' slots committed");
    assert_eq!(plans_done, 2);

    coordinator.begin_drain();
    let mut executed_by_workers = 0;
    for w in workers {
        let summary = w
            .join()
            .expect("worker thread")
            .expect("worker exits cleanly on drain");
        executed_by_workers += summary.executed;
    }
    assert_eq!(
        executed_by_workers,
        specs.len(),
        "each job executed exactly once across the fleet"
    );
    assert_eq!(coordinator.requeues(), 0, "no lease ever expired");
    let profiles = coordinator.take_job_profiles();
    assert_eq!(profiles.len(), specs.len(), "one pushed profile per job");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-path test: a worker that leases every job and dies loses
/// nothing — its leases expire, the jobs requeue, a healthy worker
/// finishes them, and the merged plan is still byte-identical to the
/// local run.
#[test]
fn killed_worker_leases_requeue_and_finish_elsewhere() {
    let dir = temp_dir("fault");
    let coordinator = Coordinator::start(&CoordinatorOptions {
        cache_dir: Some(dir.clone()),
        lease: Duration::from_millis(200),
        ..CoordinatorOptions::default()
    })
    .expect("coordinator binds loopback");
    let addr = coordinator.local_addr().to_string();
    let specs = sweep_specs();

    // Submit the plan directly so we control who leases first.
    let mut submit = Connection::connect(&addr).expect("connect");
    submit
        .send(&Request::Submit {
            specs: specs.clone(),
            trace: None,
        })
        .expect("submit");
    let plan = match submit.recv::<Response>().expect("submitted") {
        Some(Response::Submitted { plan, jobs, cached }) => {
            assert_eq!(jobs, specs.len());
            assert_eq!(cached, 0);
            plan
        }
        other => panic!("expected Submitted, got {other:?}"),
    };

    // A doomed worker grabs every job, then its process "dies": the
    // connection drops with nothing pushed.
    {
        let mut doomed = Connection::connect(&addr).expect("connect");
        doomed
            .send(&Request::Hello {
                name: "doomed".to_owned(),
                jobs: 2,
            })
            .expect("hello");
        let worker = match doomed.recv::<Response>().expect("welcome") {
            Some(Response::Welcome { worker, .. }) => worker,
            other => panic!("expected Welcome, got {other:?}"),
        };
        doomed
            .send(&Request::Lease { worker, max: 1000 })
            .expect("lease");
        match doomed.recv::<Response>().expect("jobs") {
            Some(Response::Jobs { leases }) => {
                assert_eq!(leases.len(), specs.len(), "doomed worker holds everything")
            }
            other => panic!("expected Jobs, got {other:?}"),
        }
        // Dropped here: no Push ever arrives.
    }

    // A healthy worker joins after the crash; the reaper must requeue
    // the dead leases (200 ms lease + bounded backoff) before it can
    // make progress.
    let healthy = {
        let opts = WorkerOptions {
            name: "healthy".to_owned(),
            jobs: Some(2),
            ..WorkerOptions::new(addr.clone())
        };
        std::thread::spawn(move || run_worker(&opts))
    };

    let mut wait = Connection::connect(&addr).expect("connect");
    wait.send(&Request::WaitPlan { plan }).expect("wait");
    let outcomes = match wait.recv::<Response>().expect("plan done") {
        Some(Response::PlanDone {
            plan: done,
            outcomes,
        }) => {
            assert_eq!(done, plan);
            outcomes
        }
        other => panic!("expected PlanDone, got {other:?}"),
    };

    assert_eq!(outcomes.len(), specs.len(), "nothing lost, nothing doubled");
    assert_eq!(as_json(&outcomes), as_json(&local_outcomes(&specs)));
    assert!(
        coordinator.requeues() > 0,
        "the dead worker's leases were reaped"
    );

    coordinator.begin_drain();
    let summary = healthy
        .join()
        .expect("worker thread")
        .expect("healthy worker exits cleanly");
    assert_eq!(summary.executed, specs.len(), "healthy worker ran them all");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tracing test: a span-collecting coordinator with two real
/// workers stamps all five lifecycle stages for every job, on one
/// coordinator-relative, per-job-monotonic timeline — and collecting
/// spans changes nothing about the merged outcomes.
#[test]
fn traced_fleet_stamps_every_stage_on_one_timeline() {
    let dir = temp_dir("spans");
    let registry = Registry::shared();
    let book = SpanBook::shared();
    let coordinator = Coordinator::start(&CoordinatorOptions {
        cache_dir: Some(dir.clone()),
        metrics: Some(Arc::clone(&registry)),
        spans: Some(Arc::clone(&book)),
        ..CoordinatorOptions::default()
    })
    .expect("coordinator binds loopback");
    let addr = coordinator.local_addr().to_string();

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let opts = WorkerOptions {
                name: format!("span-worker-{i}"),
                jobs: Some(2),
                ..WorkerOptions::new(addr.clone())
            };
            std::thread::spawn(move || run_worker(&opts))
        })
        .collect();

    let specs = sweep_specs();
    let report = fleet_harness(&addr).run_traced(&specs, Some("feedfacecafef00d"));
    assert_eq!(report.executed, specs.len());
    assert_eq!(
        as_json(&report.outcomes),
        as_json(&local_outcomes(&specs)),
        "span collection never perturbs the merged plan"
    );

    // Pull the timeline over the wire, exactly as `fleet-trace` does.
    let spans = FleetBackend::new(addr.clone())
        .fetch_trace()
        .expect("trace fetch");
    assert_eq!(spans.len(), specs.len(), "one span per job");
    for span in &spans {
        assert!(span.is_complete(), "all five stages stamped: {span:?}");
        assert!(
            span.worker.starts_with("span-worker-"),
            "worker track recorded: {:?}",
            span.worker
        );
        assert!(!span.key.is_empty(), "content key recorded");
        assert_eq!(
            span.trace, "feedfacecafef00d",
            "the submit trace follows every job across the wire"
        );
        let stamps: Vec<f64> = span.stamps.iter().map(|s| s.expect("complete")).collect();
        // Coordinator-side stamps share one clock and must be strictly
        // ordered; the worker-side pair is clock-normalized, so allow a
        // small estimation skew before the monotone clamp.
        assert!(stamps[0] <= stamps[1], "queued <= leased: {stamps:?}");
        assert!(
            stamps[1] - stamps[2] < 50.0,
            "leased ~<= executing: {stamps:?}"
        );
        assert!(
            stamps[2] <= stamps[3] + 1e-9,
            "executing <= pushed: {stamps:?}"
        );
        assert!(
            stamps[3] - stamps[4] < 50.0,
            "pushed ~<= committed: {stamps:?}"
        );
        let norm = span.normalized().expect("complete");
        assert!(
            norm.windows(2).all(|w| w[0] <= w[1]),
            "normalized timeline is monotone: {norm:?}"
        );
        let secs = span.stage_seconds().expect("complete");
        assert!(secs.iter().all(|s| s.is_finite() && *s >= 0.0), "{secs:?}");
    }

    // Every stage histogram observed every committed job.
    let snapshot = registry.snapshot();
    for stage in Stage::ALL {
        let sample = snapshot
            .samples
            .iter()
            .find(|s| {
                s.name == names::FLEET_JOB_STAGE_SECONDS
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "stage" && v == stage.as_str())
            })
            .unwrap_or_else(|| panic!("missing {} histogram", stage.as_str()));
        let SampleValue::TimeHistogram(h) = &sample.value else {
            panic!("{} is not a time histogram", stage.as_str());
        };
        assert_eq!(
            h.count,
            specs.len() as u64,
            "{} observed once per job",
            stage.as_str()
        );
    }

    // The assembled Chrome trace carries a track per worker and all
    // five stage names, in the shape Perfetto opens directly.
    let trace = book.chrome_trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(
        trace.contains("\"trace\":\"feedfacecafef00d\""),
        "chrome trace events carry the trace id"
    );
    for stage in Stage::ALL {
        assert!(
            trace.contains(&format!("\"name\":\"{}\"", stage.as_str())),
            "trace missing {} events",
            stage.as_str()
        );
    }
    for i in 0..2 {
        assert!(
            trace.contains(&format!("\"name\":\"span-worker-{i}\"")),
            "trace missing worker track {i}"
        );
    }

    coordinator.begin_drain();
    for w in workers {
        w.join().expect("worker thread").expect("clean drain exit");
    }
    let profiles = coordinator.take_job_profiles();
    assert_eq!(profiles.len(), specs.len());
    assert!(
        profiles
            .iter()
            .all(|p| p.trace.as_deref() == Some("feedfacecafef00d")),
        "pushed profiles carry the submit trace"
    );
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator restart durability: an unfinished plan journaled at
/// submit is re-queued by `resume`, and a worker connecting to the new
/// coordinator process finishes it.
#[test]
fn resumed_coordinator_replays_unfinished_plans() {
    let dir = temp_dir("resume");
    let specs = sweep_specs();

    // First coordinator takes the plan and "crashes" (shutdown) before
    // any worker shows up.
    {
        let coordinator = Coordinator::start(&CoordinatorOptions {
            cache_dir: Some(dir.clone()),
            ..CoordinatorOptions::default()
        })
        .expect("coordinator binds loopback");
        let addr = coordinator.local_addr().to_string();
        let mut submit = Connection::connect(&addr).expect("connect");
        submit
            .send(&Request::Submit {
                specs: specs.clone(),
                trace: None,
            })
            .expect("submit");
        match submit.recv::<Response>().expect("submitted") {
            Some(Response::Submitted { jobs, .. }) => assert_eq!(jobs, specs.len()),
            other => panic!("expected Submitted, got {other:?}"),
        }
        coordinator.shutdown();
    }

    // Second coordinator over the same cache dir resumes the journal.
    let coordinator = Coordinator::start(&CoordinatorOptions {
        cache_dir: Some(dir.clone()),
        resume: true,
        ..CoordinatorOptions::default()
    })
    .expect("coordinator binds loopback");
    let addr = coordinator.local_addr().to_string();
    let (_, pending, _, _, _) = FleetBackend::new(addr.clone())
        .status()
        .expect("status probe");
    assert_eq!(pending, specs.len(), "journaled plan is back in the queue");

    let worker = {
        let opts = WorkerOptions {
            jobs: Some(2),
            ..WorkerOptions::new(addr.clone())
        };
        std::thread::spawn(move || run_worker(&opts))
    };
    coordinator.wait_for_plans(1);
    coordinator.begin_drain();
    worker
        .join()
        .expect("worker thread")
        .expect("worker exits cleanly");

    // The resumed plan committed into the shared cache: a fresh submit
    // of the same specs is answered without any worker.
    let report = fleet_harness(&addr).run(&specs);
    assert_eq!(report.cache_hits, specs.len());
    assert_eq!(report.executed, 0);
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
