//! The fleet coordinator: a blocking TCP server around the
//! [`JobQueue`].
//!
//! The shape mirrors `horus-obs`'s scrape endpoint: one accept loop on
//! a background thread, one handler thread per connection, cooperative
//! shutdown via a flag plus a loopback poke. Handler threads speak the
//! line-delimited request/response protocol from [`crate::proto`];
//! everything they touch lives behind one `Mutex<FleetState>` with a
//! condvar for plan-completion wakeups, so the server logic is plain
//! sequential code.
//!
//! A reaper thread ticks at a quarter of the lease duration and
//! requeues expired leases — the only machinery worker death needs:
//! dispatch is at-least-once per job id, commit is exactly-once per
//! content key (see [`crate::queue`]), and the merge is plan-ordered,
//! so a killed worker loses nothing and duplicates nothing.
//!
//! Submitted plans are journaled to `<cache_dir>/plans/` (one JSON file
//! of specs per open plan, removed on completion) so a restarted
//! coordinator can re-enqueue interrupted work with
//! [`CoordinatorOptions::resume`]; completed results re-enter through
//! the result cache as instant hits.
//!
//! When [`CoordinatorOptions::spans`] carries a
//! [`horus_obs::span::SpanBook`], every job is stamped
//! through its lifecycle — queued at submit, leased at grant, the
//! worker-reported executing/pushed stamps from [`Request::Push`], and
//! committed at commit — and per-stage latencies feed the
//! `horus_fleet_job_stage_seconds` histograms. Without a book none of
//! that runs and the wire frames are byte-identical to the pre-span
//! protocol.

use crate::proto::{
    Connection, LeasedJob, ProtoSpan, ProtoSpanContext, Request, Response, PROTOCOL_VERSION,
};
use crate::queue::JobQueue;
use horus_harness::{JobSpec, ResultCache};
use horus_obs::profile::JobProfile;
use horus_obs::span::Stage;
use horus_obs::{log, names, Registry, SpanBook};
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a coordinator should run.
#[derive(Clone)]
pub struct CoordinatorOptions {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Result-cache directory; `None` uses the harness default.
    pub cache_dir: Option<PathBuf>,
    /// Disables the authoritative result cache (and the plan journal).
    pub no_cache: bool,
    /// Lease duration: a worker silent for this long forfeits its jobs.
    pub lease: Duration,
    /// Metrics registry for the fleet families; `None` records nothing.
    pub metrics: Option<Arc<Registry>>,
    /// Span collector for per-job lifecycle tracing; `None` (the
    /// default) stamps nothing and keeps wire frames span-free.
    pub spans: Option<Arc<SpanBook>>,
    /// Re-enqueue journaled plans left over from a previous run.
    pub resume: bool,
    /// Stall watchdog threshold, as a multiple of [`Self::lease`]: a job
    /// leased (and kept alive by renewals) for longer than
    /// `stall_multiple * lease` without a push is logged once — with its
    /// trace id when the plan carries one — and counted in
    /// `horus_fleet_stalled_jobs_total`. Values below 1.0 are clamped up
    /// so the watchdog never fires before a lease could even expire.
    pub stall_multiple: f64,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: None,
            no_cache: false,
            lease: Duration::from_secs(30),
            metrics: None,
            spans: None,
            resume: false,
            stall_multiple: 3.0,
        }
    }
}

/// Pre-registered handles for the fleet metric families (inert when the
/// coordinator has no registry).
struct FleetMetrics {
    registry: Arc<Registry>,
}

impl FleetMetrics {
    /// Registers every unlabelled fleet family at its zero value, so
    /// scrapes and run summaries always carry them even when nothing —
    /// e.g. a lease expiry — ever happened. The stage histograms are
    /// pre-registered for all five stages the same way.
    fn new(registry: Arc<Registry>) -> Self {
        let m = FleetMetrics { registry };
        m.workers(0);
        m.leases(0);
        m.requeues(0);
        m.plans(0);
        m.stalled(0);
        for stage in Stage::ALL {
            let _ = m.stage(stage);
        }
        m
    }

    fn workers(&self, delta: i64) {
        self.registry
            .gauge(
                names::FLEET_WORKERS,
                "Workers currently registered with the fleet coordinator.",
                &[],
            )
            .add(delta);
    }

    fn leases(&self, delta: i64) {
        self.registry
            .gauge(
                names::FLEET_LEASES_IN_FLIGHT,
                "Job leases currently held by fleet workers.",
                &[],
            )
            .add(delta);
    }

    fn requeues(&self, n: u64) {
        self.registry
            .counter(
                names::FLEET_REQUEUES,
                "Expired leases returned to the fleet queue.",
                &[],
            )
            .add(n);
    }

    fn stalled(&self, n: u64) {
        self.registry
            .counter(
                names::FLEET_STALLED_JOBS,
                "Jobs leased but not pushed within the stall-watchdog window.",
                &[],
            )
            .add(n);
    }

    fn worker_job(&self, worker: u64) {
        self.registry
            .counter(
                names::FLEET_WORKER_JOBS,
                "Jobs committed per fleet worker.",
                &[("worker", &worker.to_string())],
            )
            .inc();
    }

    fn plan_done(&self) {
        self.plans(1);
    }

    fn plans(&self, n: u64) {
        self.registry
            .counter(
                names::FLEET_PLANS,
                "Sweep plans fully merged by the fleet coordinator.",
                &[],
            )
            .add(n);
    }

    fn stage(&self, stage: Stage) -> horus_obs::TimeHistogram {
        self.registry.time_histogram(
            names::FLEET_JOB_STAGE_SECONDS,
            "Per-stage job latency observed at commit (committed = end-to-end).",
            &[("stage", stage.as_str())],
        )
    }

    /// Records one committed job's per-stage latencies.
    fn stage_seconds(&self, secs: [f64; horus_obs::span::STAGES]) {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            self.stage(stage).observe_seconds(secs[i]);
        }
    }
}

struct FleetState {
    queue: JobQueue,
    cache: Option<ResultCache>,
    journal_dir: Option<PathBuf>,
    workers: usize,
    next_worker: u64,
    /// Display names by worker id, for span tracks and logs.
    worker_names: HashMap<u64, String>,
    /// Correlation trace id per open plan, from traced submits; entries
    /// retire with their plan.
    plan_traces: HashMap<u64, String>,
    /// First-lease instant per in-flight job, for the stall watchdog.
    first_leased: HashMap<u64, Instant>,
    /// Jobs the watchdog has already warned about (warn once per job).
    stall_warned: HashSet<u64>,
    draining: bool,
    profiles: Vec<JobProfile>,
}

struct Shared {
    state: Mutex<FleetState>,
    /// Signalled on every commit (plan completion) and on drain.
    planwake: Condvar,
    metrics: Option<FleetMetrics>,
    spans: Option<Arc<SpanBook>>,
    lease: Duration,
    /// Leased-not-pushed age at which the stall watchdog fires.
    stall_after: Duration,
    shutdown: AtomicBool,
}

/// A running coordinator; dropping it stops the listener and reaper.
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the address and starts the accept loop and lease reaper.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn start(options: &CoordinatorOptions) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let cache = if options.no_cache {
            None
        } else {
            Some(match &options.cache_dir {
                Some(dir) => ResultCache::new(dir.clone()),
                None => ResultCache::default_location(),
            })
        };
        let journal_dir = cache.as_ref().map(|c| c.dir().join("plans"));
        let mut state = FleetState {
            queue: JobQueue::new(),
            cache,
            journal_dir,
            workers: 0,
            next_worker: 0,
            worker_names: HashMap::new(),
            plan_traces: HashMap::new(),
            first_leased: HashMap::new(),
            stall_warned: HashSet::new(),
            draining: false,
            profiles: Vec::new(),
        };
        if options.resume {
            resume_journal(&mut state);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            planwake: Condvar::new(),
            metrics: options
                .metrics
                .as_ref()
                .map(|r| FleetMetrics::new(Arc::clone(r))),
            spans: options.spans.as_ref().map(Arc::clone),
            lease: options.lease,
            stall_after: options.lease.mul_f64(options.stall_multiple.max(1.0)),
            shutdown: AtomicBool::new(false),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("horus-fleet-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    // Handler threads are detached; they exit on peer
                    // disconnect, protocol error, or read timeout.
                    let _ = std::thread::Builder::new()
                        .name("horus-fleet-conn".to_owned())
                        .spawn(move || handle_connection(stream, &conn_shared));
                }
            })?;

        let reaper_shared = Arc::clone(&shared);
        let tick = (options.lease / 4).max(Duration::from_millis(25));
        let reaper = std::thread::Builder::new()
            .name("horus-fleet-reaper".to_owned())
            .spawn(move || {
                while !reaper_shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    let now = Instant::now();
                    let (expired, stalled) = {
                        let mut st = reaper_shared.state.lock().expect("fleet state poisoned");
                        let expired = st.queue.expire(now);
                        (expired, find_stalled_jobs(&mut st, now, &reaper_shared))
                    };
                    if expired > 0 {
                        if let Some(m) = &reaper_shared.metrics {
                            m.leases(-(expired as i64));
                            m.requeues(expired as u64);
                        }
                    }
                    for stall in &stalled {
                        stall.warn();
                    }
                    if !stalled.is_empty() {
                        if let Some(m) = &reaper_shared.metrics {
                            m.stalled(stalled.len() as u64);
                        }
                    }
                }
            })?;

        Ok(Coordinator {
            addr,
            shared,
            accept: Some(accept),
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until at least `n` plans have fully committed.
    pub fn wait_for_plans(&self, n: usize) {
        let mut st = self.shared.state.lock().expect("fleet state poisoned");
        while st.queue.plans_done() < n {
            st = self
                .shared
                .planwake
                .wait_timeout(st, Duration::from_millis(200))
                .expect("fleet state poisoned")
                .0;
        }
    }

    /// Starts draining: lease requests with no work now answer
    /// `Drained` so idle workers exit cleanly. Open plans still finish.
    pub fn begin_drain(&self) {
        let mut st = self.shared.state.lock().expect("fleet state poisoned");
        st.draining = true;
        drop(st);
        self.shared.planwake.notify_all();
    }

    /// Lifetime count of expired-lease requeues.
    #[must_use]
    pub fn requeues(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("fleet state poisoned")
            .queue
            .requeues
    }

    /// Drains the per-job host profiles workers have pushed so far (in
    /// commit order) — the coordinator-side analogue of
    /// `Harness::take_job_profiles`, feeding the obs summary artifact.
    #[must_use]
    pub fn take_job_profiles(&self) -> Vec<JobProfile> {
        std::mem::take(
            &mut self
                .shared
                .state
                .lock()
                .expect("fleet state poisoned")
                .profiles,
        )
    }

    /// Stops the listener and reaper and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.planwake.notify_all();
            // Wake the blocking accept; an error just means the
            // listener already went away.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection's request/response loop. Returns (closing the
/// connection) on EOF, I/O error, read timeout, or an unreadable frame.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(mut conn) = Connection::from_stream(stream) else {
        return;
    };
    // A silent peer should not pin this thread forever. Workers poll
    // leases well inside this window; submitters waiting on a plan use
    // WaitPlan, which answers from the condvar loop below (the timeout
    // applies between requests, not while a response is being built).
    let _ = conn.set_read_timeout(shared.lease.max(Duration::from_secs(5)) * 4);
    let mut registered_worker = false;
    loop {
        let request = match conn.recv::<Request>() {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(message) => {
                // Tell the peer what was wrong with the frame, then
                // drop the connection: framing is unrecoverable.
                let _ = conn.send(&Response::Error { message });
                break;
            }
        };
        let response = match request {
            Request::Hello { name, jobs } => {
                let mut st = shared.state.lock().expect("fleet state poisoned");
                let worker = st.next_worker;
                st.next_worker += 1;
                st.workers += 1;
                st.worker_names.insert(worker, name.clone());
                registered_worker = true;
                drop(st);
                if let Some(m) = &shared.metrics {
                    m.workers(1);
                }
                log::info(
                    "fleet",
                    "worker registered",
                    &[
                        ("worker", &worker.to_string()),
                        ("name", &name),
                        ("jobs", &jobs.to_string()),
                    ],
                );
                Response::Welcome {
                    worker,
                    lease_ms: u64::try_from(shared.lease.as_millis()).unwrap_or(u64::MAX),
                    protocol: PROTOCOL_VERSION,
                    // Only a span-collecting coordinator reveals its
                    // clock; otherwise the frame stays pre-span.
                    now_ms: shared.spans.as_ref().map(|book| book.now_ms()),
                }
            }
            Request::Renew { worker } => {
                let mut st = shared.state.lock().expect("fleet state poisoned");
                st.queue.renew(worker, Instant::now(), shared.lease);
                drop(st);
                Response::Ack
            }
            Request::Lease { worker, max } => {
                let mut st = shared.state.lock().expect("fleet state poisoned");
                let lease_now = Instant::now();
                let leased = st.queue.lease(worker, max.max(1), lease_now, shared.lease);
                for (job, _) in &leased {
                    // First grant only: a requeued job keeps its original
                    // instant so the stall watchdog measures total age.
                    st.first_leased.entry(*job).or_insert(lease_now);
                }
                // Only send a worker home when nothing is pending *or*
                // leased: a job backing off after a requeue, or held by
                // a worker that may yet die, still needs hands around.
                let drained = leased.is_empty() && st.draining && st.queue.is_idle();
                drop(st);
                if leased.is_empty() {
                    if drained || shared.shutdown.load(Ordering::SeqCst) {
                        Response::Drained
                    } else {
                        Response::Retry { after_ms: 100 }
                    }
                } else {
                    if let Some(m) = &shared.metrics {
                        m.leases(leased.len() as i64);
                    }
                    let contexts: Vec<Option<ProtoSpanContext>> = match &shared.spans {
                        Some(book) => {
                            let st = shared.state.lock().expect("fleet state poisoned");
                            let name = st.worker_names.get(&worker).cloned();
                            let now = book.now_ms();
                            leased
                                .iter()
                                .map(|(job, _)| {
                                    let (plan, key, _) = st.queue.job_info(*job)?;
                                    let trace = st.plan_traces.get(&plan).cloned();
                                    // Fallback queued stamp for jobs that
                                    // predate the book (resumed plans):
                                    // first-stamp-wins keeps the real one.
                                    book.stamp_traced(
                                        plan,
                                        *job,
                                        key,
                                        Stage::Queued,
                                        now,
                                        None,
                                        trace.as_deref(),
                                    );
                                    book.stamp_traced(
                                        plan,
                                        *job,
                                        key,
                                        Stage::Leased,
                                        now,
                                        name.as_deref(),
                                        trace.as_deref(),
                                    );
                                    let span = book.get(plan, *job)?;
                                    Some(ProtoSpanContext {
                                        plan,
                                        queued_ms: span.stamps[Stage::Queued.index()]
                                            .unwrap_or(now),
                                        leased_ms: now,
                                        trace,
                                    })
                                })
                                .collect()
                        }
                        None => vec![None; leased.len()],
                    };
                    Response::Jobs {
                        leases: leased
                            .into_iter()
                            .zip(contexts)
                            .map(|((job, spec), span)| LeasedJob { job, spec, span })
                            .collect(),
                    }
                }
            }
            Request::Push {
                worker,
                job,
                outcome,
                profile,
                span,
            } => {
                let mut st = shared.state.lock().expect("fleet state poisoned");
                let cache = st.cache.clone();
                // Snapshot before the commit: a slot already Done means
                // this push is a duplicate and must not re-stamp or
                // re-observe anything.
                let info = st
                    .queue
                    .job_info(job)
                    .map(|(plan, key, done)| (plan, key.to_string(), done));
                let worker_name = st.worker_names.get(&worker).cloned();
                let plan_trace = info
                    .as_ref()
                    .and_then(|(plan, ..)| st.plan_traces.get(plan).cloned());
                let completed = st.queue.commit(job, outcome, cache.as_ref());
                if let Some(p) = profile {
                    let mut profile = JobProfile::from(p);
                    // A span-less worker cannot know the trace; the
                    // coordinator still owns the plan→trace map, so the
                    // profile joins regardless.
                    if profile.trace.is_none() {
                        profile.trace = plan_trace.clone();
                    }
                    st.profiles.push(profile);
                }
                st.first_leased.remove(&job);
                st.stall_warned.remove(&job);
                for plan in &completed {
                    retire_journal(&st, *plan);
                    st.plan_traces.remove(plan);
                }
                drop(st);
                if let (Some(book), Some((plan, key, false))) = (&shared.spans, &info) {
                    let now = book.now_ms();
                    let name = worker_name.as_deref();
                    let trace = plan_trace.as_deref();
                    if let Some(stamps) = &span {
                        book.stamp_traced(
                            *plan,
                            job,
                            key,
                            Stage::Executing,
                            stamps.executing_ms,
                            name,
                            trace,
                        );
                        book.stamp_traced(
                            *plan,
                            job,
                            key,
                            Stage::Pushed,
                            stamps.pushed_ms,
                            name,
                            trace,
                        );
                    } else {
                        // A span-less worker still yields a connected
                        // timeline: both worker stages collapse onto
                        // the commit instant.
                        book.stamp_traced(*plan, job, key, Stage::Executing, now, name, trace);
                        book.stamp_traced(*plan, job, key, Stage::Pushed, now, name, trace);
                    }
                    book.stamp_traced(*plan, job, key, Stage::Committed, now, name, trace);
                    if let Some(m) = &shared.metrics {
                        if let Some(secs) = book.get(*plan, job).and_then(|s| s.stage_seconds()) {
                            m.stage_seconds(secs);
                        }
                    }
                }
                if let Some(m) = &shared.metrics {
                    m.leases(-1);
                    m.worker_job(worker);
                    for _ in &completed {
                        m.plan_done();
                    }
                }
                if !completed.is_empty() {
                    shared.planwake.notify_all();
                }
                Response::Ack
            }
            Request::Submit { specs, trace } => {
                let trace = trace.filter(|t| !t.is_empty());
                let mut st = shared.state.lock().expect("fleet state poisoned");
                let cache = st.cache.clone();
                let sub = st.queue.submit(specs.clone(), cache.as_ref());
                if st.queue.plan_outcomes(sub.plan).is_some() {
                    // Fully satisfied from the cache.
                    if let Some(m) = &shared.metrics {
                        m.plan_done();
                    }
                } else {
                    write_journal(&st, sub.plan, &specs);
                    if let Some(trace) = &trace {
                        st.plan_traces.insert(sub.plan, trace.clone());
                    }
                }
                let plan_jobs = shared
                    .spans
                    .as_ref()
                    .map(|_| st.queue.plan_jobs(sub.plan))
                    .unwrap_or_default();
                drop(st);
                if let Some(book) = &shared.spans {
                    let now = book.now_ms();
                    for (job, key) in &plan_jobs {
                        book.stamp_traced(
                            sub.plan,
                            *job,
                            key,
                            Stage::Queued,
                            now,
                            None,
                            trace.as_deref(),
                        );
                    }
                }
                shared.planwake.notify_all();
                let plan_s = sub.plan.to_string();
                let jobs_s = sub.jobs.to_string();
                let cached_s = sub.cached.to_string();
                let mut fields: Vec<(&str, &str)> =
                    vec![("plan", &plan_s), ("jobs", &jobs_s), ("cached", &cached_s)];
                if let Some(trace) = &trace {
                    fields.push(("trace_id", trace));
                }
                log::info("fleet", "plan submitted", &fields);
                Response::Submitted {
                    plan: sub.plan,
                    jobs: sub.jobs,
                    cached: sub.cached,
                }
            }
            Request::WaitPlan { plan } => {
                let mut st = shared.state.lock().expect("fleet state poisoned");
                let outcomes = loop {
                    if let Some(outcomes) = st.queue.plan_outcomes(plan) {
                        break Some(outcomes);
                    }
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    st = shared
                        .planwake
                        .wait_timeout(st, Duration::from_millis(200))
                        .expect("fleet state poisoned")
                        .0;
                };
                drop(st);
                match outcomes {
                    Some(outcomes) => Response::PlanDone { plan, outcomes },
                    None => Response::Error {
                        message: format!("coordinator shut down before plan {plan} completed"),
                    },
                }
            }
            Request::Status => {
                let st = shared.state.lock().expect("fleet state poisoned");
                let (pending, leased, done) = st.queue.counts();
                Response::Status {
                    workers: st.workers,
                    pending,
                    leased,
                    done,
                    plans_done: st.queue.plans_done(),
                }
            }
            Request::FleetTrace => Response::FleetTrace {
                spans: shared
                    .spans
                    .as_ref()
                    .map(|book| book.spans().iter().map(ProtoSpan::from).collect())
                    .unwrap_or_default(),
            },
        };
        if conn.send(&response).is_err() {
            break;
        }
    }
    if registered_worker {
        let mut st = shared.state.lock().expect("fleet state poisoned");
        st.workers = st.workers.saturating_sub(1);
        drop(st);
        if let Some(m) = &shared.metrics {
            m.workers(-1);
        }
    }
}

/// One stall-watchdog hit, captured under the state lock and logged
/// after it is released.
struct StalledJob {
    job: u64,
    plan: u64,
    key: String,
    age_s: f64,
    trace: Option<String>,
}

impl StalledJob {
    fn warn(&self) {
        let job = self.job.to_string();
        let plan = self.plan.to_string();
        let age = format!("{:.1}", self.age_s);
        let mut fields: Vec<(&str, &str)> = vec![
            ("job", &job),
            ("plan", &plan),
            ("key", &self.key),
            ("age_s", &age),
        ];
        if let Some(trace) = &self.trace {
            fields.push(("trace_id", trace));
        }
        log::warn("fleet", "job leased but not pushed", &fields);
    }
}

/// Scans the first-lease ledger for jobs older than the stall window
/// that have not pushed yet, marking each so it is warned exactly once.
/// Entries whose job has meanwhile committed are dropped silently.
fn find_stalled_jobs(st: &mut FleetState, now: Instant, shared: &Shared) -> Vec<StalledJob> {
    let mut stalled = Vec::new();
    let mut done = Vec::new();
    for (&job, &leased_at) in &st.first_leased {
        let age = now.saturating_duration_since(leased_at);
        if age < shared.stall_after || st.stall_warned.contains(&job) {
            continue;
        }
        match st.queue.job_info(job) {
            Some((plan, key, false)) => stalled.push(StalledJob {
                job,
                plan,
                key: key.to_string(),
                age_s: age.as_secs_f64(),
                trace: st.plan_traces.get(&plan).cloned(),
            }),
            _ => done.push(job),
        }
    }
    for job in done {
        st.first_leased.remove(&job);
        st.stall_warned.remove(&job);
    }
    for s in &stalled {
        st.stall_warned.insert(s.job);
    }
    stalled
}

/// Journals an open plan's specs so a restarted coordinator can
/// re-enqueue them. Best-effort: a failed write costs resumability,
/// never correctness.
fn write_journal(st: &FleetState, plan: u64, specs: &[JobSpec]) {
    let Some(dir) = &st.journal_dir else { return };
    let write = std::fs::create_dir_all(dir).and_then(|()| {
        let json = serde_json::to_string(specs)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join(format!("plan-{plan}.json")), json)
    });
    if let Err(e) = write {
        log::error(
            "fleet",
            "journal write failed",
            &[("plan", &plan.to_string()), ("error", &e.to_string())],
        );
    }
}

/// Removes a completed plan's journal entry.
fn retire_journal(st: &FleetState, plan: u64) {
    if let Some(dir) = &st.journal_dir {
        let _ = std::fs::remove_file(dir.join(format!("plan-{plan}.json")));
    }
}

/// Re-enqueues every journaled plan (previous coordinator died with
/// work open). Finished jobs re-enter as cache hits; only the genuinely
/// interrupted tail re-executes.
fn resume_journal(st: &mut FleetState) {
    let Some(dir) = st.journal_dir.clone() else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("plan-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    for path in files {
        let specs: Vec<JobSpec> = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
        {
            Ok(specs) => specs,
            Err(e) => {
                log::warn(
                    "fleet",
                    "unreadable journal",
                    &[("path", &path.display().to_string()), ("error", &e)],
                );
                continue;
            }
        };
        let cache = st.cache.clone();
        let sub = st.queue.submit(specs.clone(), cache.as_ref());
        log::info(
            "fleet",
            "plan resumed from journal",
            &[
                ("plan", &sub.plan.to_string()),
                ("path", &path.display().to_string()),
                ("jobs", &sub.jobs.to_string()),
                ("cached", &sub.cached.to_string()),
            ],
        );
        let _ = std::fs::remove_file(&path);
        if st.queue.plan_outcomes(sub.plan).is_none() {
            write_journal(st, sub.plan, &specs);
        }
    }
}
