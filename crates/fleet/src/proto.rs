//! The fleet wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON value on one line (`\n`-terminated;
//! `serde_json` escapes embedded newlines, so framing is unambiguous).
//! Connections are strictly request/response: the client — a worker or
//! a submitting harness — writes one [`Request`] line and reads one
//! [`Response`] line. A line that is not valid JSON for the expected
//! type is a protocol error on that connection only; it never panics
//! the peer.
//!
//! The protocol rides on the workspace's canonical serde encodings:
//! [`JobSpec`] crosses the wire in exactly the JSON form its content
//! key is computed from, and [`JobOutcome`] in the form the result
//! cache stores — so coordinator-side memoization and worker-side
//! execution agree on identity byte-for-byte.

use horus_harness::{JobOutcome, JobSpec};
use horus_obs::profile::JobProfile;
use horus_obs::span::{JobSpan, Stage};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bump on any incompatible message-shape change; the coordinator
/// advertises its version in [`Response::Welcome`] and workers refuse a
/// mismatch rather than corrupting a run.
pub const PROTOCOL_VERSION: u32 = 1;

/// One leased job: the queue's id for it plus the spec to execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeasedJob {
    /// Coordinator-assigned job id (unique per coordinator lifetime).
    pub job: u64,
    /// The experiment point to run.
    pub spec: JobSpec,
    /// Trace context, present only when the coordinator collects spans.
    /// Absent on the wire otherwise, so span-less coordinators emit
    /// exactly the pre-span frames (and old peers decode new ones).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span: Option<ProtoSpanContext>,
}

/// Per-job trace context a span-collecting coordinator attaches to a
/// lease: enough for the worker to know the job is being traced. The
/// coordinator-side stamps ride along for debuggability; the
/// coordinator's own [`SpanBook`](horus_obs::span::SpanBook) remains
/// the source of truth for them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoSpanContext {
    /// Plan the job belongs to.
    pub plan: u64,
    /// Coordinator-clock ms when the job was enqueued.
    pub queued_ms: f64,
    /// Coordinator-clock ms when this lease was granted.
    pub leased_ms: f64,
    /// Correlation trace id minted at submission, when the plan was
    /// traced. Absent on the wire otherwise (the PR-7 pattern), so
    /// untraced runs emit byte-identical frames.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
}

/// Worker-side stage timestamps reported with a [`Request::Push`],
/// already normalized to the coordinator clock via the offset measured
/// on the Hello/Welcome round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoStageStamps {
    /// Coordinator-relative ms when the worker began executing the job.
    pub executing_ms: f64,
    /// Coordinator-relative ms when the worker sent the result.
    pub pushed_ms: f64,
}

/// The serde mirror of [`JobSpan`] (`horus-obs` stays serde-free):
/// one job's full lifecycle as stamped by the coordinator, fetched
/// whole via [`Request::FleetTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoSpan {
    /// Plan the job belongs to.
    pub plan: u64,
    /// Coordinator-assigned job id.
    pub job: u64,
    /// Job content key.
    pub key: String,
    /// Name of the worker that committed the job (empty if none yet).
    pub worker: String,
    /// Coordinator-clock ms at enqueue.
    pub queued_ms: Option<f64>,
    /// Coordinator-clock ms at lease grant.
    pub leased_ms: Option<f64>,
    /// Coordinator-relative ms at execution start (worker-reported).
    pub executing_ms: Option<f64>,
    /// Coordinator-relative ms at result push (worker-reported).
    pub pushed_ms: Option<f64>,
    /// Coordinator-clock ms at commit.
    pub committed_ms: Option<f64>,
    /// Correlation trace id, when the span was traced (absent on the
    /// wire otherwise; mirrors [`JobSpan::trace`]'s empty-string
    /// untraced convention).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
}

impl From<&JobSpan> for ProtoSpan {
    fn from(s: &JobSpan) -> Self {
        ProtoSpan {
            plan: s.plan,
            job: s.job,
            key: s.key.clone(),
            worker: s.worker.clone(),
            queued_ms: s.stamps[Stage::Queued.index()],
            leased_ms: s.stamps[Stage::Leased.index()],
            executing_ms: s.stamps[Stage::Executing.index()],
            pushed_ms: s.stamps[Stage::Pushed.index()],
            committed_ms: s.stamps[Stage::Committed.index()],
            trace: if s.trace.is_empty() {
                None
            } else {
                Some(s.trace.clone())
            },
        }
    }
}

impl From<ProtoSpan> for JobSpan {
    fn from(s: ProtoSpan) -> Self {
        let mut stamps = [None; horus_obs::span::STAGES];
        stamps[Stage::Queued.index()] = s.queued_ms;
        stamps[Stage::Leased.index()] = s.leased_ms;
        stamps[Stage::Executing.index()] = s.executing_ms;
        stamps[Stage::Pushed.index()] = s.pushed_ms;
        stamps[Stage::Committed.index()] = s.committed_ms;
        JobSpan {
            plan: s.plan,
            job: s.job,
            key: s.key,
            worker: s.worker,
            trace: s.trace.unwrap_or_default(),
            stamps,
        }
    }
}

/// The serde mirror of [`JobProfile`] (`horus-obs` stays serde-free, so
/// the profile crosses the wire through this copy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoProfile {
    /// Job content key the profile belongs to.
    pub label: String,
    /// Drain scheme, when the job was scheme-shaped.
    pub scheme: Option<String>,
    /// Correlation trace id, when the job was traced (absent on the
    /// wire otherwise).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// Whether the job was answered from a cache.
    pub cached: bool,
    /// Wall-clock seconds the job took on the worker.
    pub wall_seconds: f64,
    /// Process CPU seconds attributed to the job, when measurable.
    pub cpu_seconds: Option<f64>,
    /// Allocations during the job (alloc-profile builds only).
    pub allocations: Option<u64>,
    /// Bytes allocated during the job (alloc-profile builds only).
    pub allocated_bytes: Option<u64>,
}

impl From<JobProfile> for ProtoProfile {
    fn from(p: JobProfile) -> Self {
        ProtoProfile {
            label: p.label,
            scheme: p.scheme,
            trace: p.trace,
            cached: p.cached,
            wall_seconds: p.wall_seconds,
            cpu_seconds: p.cpu_seconds,
            allocations: p.allocations,
            allocated_bytes: p.allocated_bytes,
        }
    }
}

impl From<ProtoProfile> for JobProfile {
    fn from(p: ProtoProfile) -> Self {
        JobProfile {
            label: p.label,
            scheme: p.scheme,
            trace: p.trace,
            cached: p.cached,
            wall_seconds: p.wall_seconds,
            cpu_seconds: p.cpu_seconds,
            allocations: p.allocations,
            allocated_bytes: p.allocated_bytes,
        }
    }
}

/// Client → coordinator messages.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// A worker announces itself: display name and pool width.
    Hello {
        /// Worker display name (for logs and per-worker metrics).
        name: String,
        /// Local worker-pool width (informational).
        jobs: usize,
    },
    /// A worker asks for up to `max` jobs.
    Lease {
        /// The id [`Response::Welcome`] assigned.
        worker: u64,
        /// Maximum batch size the worker wants.
        max: usize,
    },
    /// A worker still alive extends the deadline of every lease it
    /// holds. Sent from a heartbeat side-connection while the worker's
    /// pool is busy executing a batch — a job longer than the lease
    /// would otherwise requeue out from under a healthy worker.
    Renew {
        /// The id [`Response::Welcome`] assigned.
        worker: u64,
    },
    /// A worker reports one finished job.
    Push {
        /// The id [`Response::Welcome`] assigned.
        worker: u64,
        /// The leased job's id.
        job: u64,
        /// What happened.
        outcome: JobOutcome,
        /// Host profile of the execution, when collected.
        profile: Option<ProtoProfile>,
        /// Worker-side stage stamps, present only when the lease
        /// carried a trace context (absent on the wire otherwise).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        span: Option<ProtoStageStamps>,
    },
    /// A submitting harness enqueues a sweep plan.
    Submit {
        /// The plan's specs, in submission (= merge) order.
        specs: Vec<JobSpec>,
        /// Correlation trace id for the whole plan, when the submitter
        /// is traced. Absent on the wire otherwise, so untraced
        /// submissions emit the pre-insight frames byte for byte.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace: Option<String>,
    },
    /// Blocks until the plan completes, then returns its outcomes.
    WaitPlan {
        /// The id [`Response::Submitted`] assigned.
        plan: u64,
    },
    /// Queue/worker counts, for smoke checks and dashboards.
    Status,
    /// Fetches every span the coordinator has stamped so far (see
    /// `horus-cli fleet-trace`). Answered with an empty list by a
    /// coordinator that is not collecting spans.
    FleetTrace,
}

/// Coordinator → client messages.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    Welcome {
        /// The worker's id for this coordinator session.
        worker: u64,
        /// Lease duration in milliseconds: a worker silent for this
        /// long is presumed dead and its jobs requeue. Workers renew at
        /// a fraction of it (see [`Request::Renew`]).
        lease_ms: u64,
        /// Coordinator protocol version (see [`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Coordinator-clock ms at the moment the Welcome was sent;
        /// present only when the coordinator collects spans. The worker
        /// halves the Hello→Welcome round trip against it to normalize
        /// its own stamps to the coordinator clock.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        now_ms: Option<f64>,
    },
    /// Answer to [`Request::Lease`] when work is available.
    Jobs {
        /// The leased batch, at most `max` entries.
        leases: Vec<LeasedJob>,
    },
    /// Answer to [`Request::Lease`] when nothing is leasable right now.
    Retry {
        /// Suggested delay before the next lease attempt.
        after_ms: u64,
    },
    /// Answer to [`Request::Lease`] when the coordinator is draining:
    /// no work is left and none will come — the worker should exit.
    Drained,
    /// Answer to [`Request::Push`].
    Ack,
    /// Answer to [`Request::Submit`].
    Submitted {
        /// The plan's id, for [`Request::WaitPlan`].
        plan: u64,
        /// Number of jobs enqueued.
        jobs: usize,
        /// Jobs answered immediately from the coordinator's result
        /// cache (already committed; workers will never see them).
        cached: usize,
    },
    /// Answer to [`Request::WaitPlan`] once every job has committed.
    PlanDone {
        /// The plan's id.
        plan: u64,
        /// Per-job outcomes, in submission order.
        outcomes: Vec<JobOutcome>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Workers currently registered.
        workers: usize,
        /// Jobs waiting to be leased.
        pending: usize,
        /// Jobs currently leased out.
        leased: usize,
        /// Jobs committed.
        done: usize,
        /// Plans fully merged.
        plans_done: usize,
    },
    /// Answer to [`Request::FleetTrace`].
    FleetTrace {
        /// Every span stamped so far, in (plan, job) order.
        spans: Vec<ProtoSpan>,
    },
    /// The request could not be served (unknown plan, malformed line).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Renders `msg` as its single-line wire form (newline included).
///
/// # Errors
///
/// Returns the serializer's message for unencodable values (does not
/// happen for the protocol types).
pub fn encode<T: Serialize>(msg: &T) -> Result<String, String> {
    let mut line = serde_json::to_string(msg).map_err(|e| e.to_string())?;
    line.push('\n');
    Ok(line)
}

/// Parses one wire line into a message. Truncated or garbage input is
/// an `Err`, never a panic.
///
/// # Errors
///
/// Returns a description of why the line is not a valid `T`.
pub fn decode<T: DeserializeOwned>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim_end()).map_err(|e| format!("bad frame: {e}"))
}

/// One framed TCP connection: buffered line reader plus writer.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` (no read timeout: [`Request::WaitPlan`]
    /// blocks for the length of a plan).
    ///
    /// # Errors
    ///
    /// Returns a message naming the address on connect failure.
    pub fn connect(addr: &str) -> Result<Connection, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot reach fleet at {addr}: {e}"))?;
        Connection::from_stream(stream).map_err(|e| format!("fleet connection setup: {e}"))
    }

    /// Wraps an accepted stream (coordinator side).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the stream cannot be cloned.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Connection> {
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Applies a read timeout (coordinator side: a silent peer should
    /// not pin a handler thread forever).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }

    /// Writes one message line.
    ///
    /// # Errors
    ///
    /// Returns a description of the serialization or I/O failure.
    pub fn send<T: Serialize>(&mut self, msg: &T) -> Result<(), String> {
        let line = encode(msg)?;
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("fleet send: {e}"))
    }

    /// Reads one message line. `Ok(None)` is clean EOF (the peer closed
    /// the connection); a malformed line is `Err`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or framing failure.
    pub fn recv<T: DeserializeOwned>(&mut self) -> Result<Option<T>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => decode(&line).map(Some),
            Err(e) => Err(format!("fleet recv: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::{DrainScheme, SystemConfig};
    use horus_workload::FillPattern;

    fn spec() -> JobSpec {
        JobSpec::drain(
            &SystemConfig::small_test(),
            DrainScheme::HorusSlm,
            FillPattern::StridedSparse { min_stride: 16384 },
        )
    }

    fn roundtrip<T>(msg: &T)
    where
        T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
    {
        let line = encode(msg).expect("encode");
        assert!(line.ends_with('\n'), "line-framed");
        assert_eq!(line.matches('\n').count(), 1, "exactly one newline");
        let back: T = decode(&line).expect("decode");
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_request_roundtrips() {
        let outcome = JobOutcome::Completed {
            result: spec().execute(),
            cached: false,
        };
        roundtrip(&Request::Hello {
            name: "w-1".into(),
            jobs: 4,
        });
        roundtrip(&Request::Lease { worker: 3, max: 8 });
        roundtrip(&Request::Renew { worker: 3 });
        roundtrip(&Request::Push {
            worker: 3,
            job: 17,
            outcome,
            profile: Some(ProtoProfile {
                label: spec().key(),
                scheme: Some("Horus-SLM".into()),
                trace: Some("9f8a6c2d01b4e37f".into()),
                cached: false,
                wall_seconds: 0.25,
                cpu_seconds: Some(0.2),
                allocations: None,
                allocated_bytes: None,
            }),
            span: Some(ProtoStageStamps {
                executing_ms: 12.5,
                pushed_ms: 260.0,
            }),
        });
        roundtrip(&Request::Push {
            worker: 3,
            job: 18,
            outcome: JobOutcome::Panicked {
                message: "diverged\nwith a newline".into(),
            },
            profile: None,
            span: None,
        });
        roundtrip(&Request::Submit {
            specs: vec![spec(), spec()],
            trace: None,
        });
        roundtrip(&Request::Submit {
            specs: vec![spec()],
            trace: Some("9f8a6c2d01b4e37f".into()),
        });
        roundtrip(&Request::WaitPlan { plan: 2 });
        roundtrip(&Request::Status);
        roundtrip(&Request::FleetTrace);
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip(&Response::Welcome {
            worker: 1,
            lease_ms: 30_000,
            protocol: PROTOCOL_VERSION,
            now_ms: None,
        });
        roundtrip(&Response::Welcome {
            worker: 1,
            lease_ms: 30_000,
            protocol: PROTOCOL_VERSION,
            now_ms: Some(1234.75),
        });
        roundtrip(&Response::Jobs {
            leases: vec![LeasedJob {
                job: 9,
                spec: spec(),
                span: None,
            }],
        });
        roundtrip(&Response::Jobs {
            leases: vec![LeasedJob {
                job: 9,
                spec: spec(),
                span: Some(ProtoSpanContext {
                    plan: 1,
                    queued_ms: 3.0,
                    leased_ms: 8.25,
                    trace: Some("9f8a6c2d01b4e37f".into()),
                }),
            }],
        });
        roundtrip(&Response::Retry { after_ms: 100 });
        roundtrip(&Response::Drained);
        roundtrip(&Response::Ack);
        roundtrip(&Response::Submitted {
            plan: 5,
            jobs: 10,
            cached: 4,
        });
        roundtrip(&Response::PlanDone {
            plan: 5,
            outcomes: vec![JobOutcome::Completed {
                result: spec().execute(),
                cached: true,
            }],
        });
        roundtrip(&Response::Status {
            workers: 2,
            pending: 3,
            leased: 1,
            done: 6,
            plans_done: 1,
        });
        roundtrip(&Response::FleetTrace { spans: Vec::new() });
        roundtrip(&Response::FleetTrace {
            spans: vec![ProtoSpan {
                plan: 1,
                job: 9,
                key: "abc".into(),
                worker: "w-a".into(),
                queued_ms: Some(1.0),
                leased_ms: Some(2.0),
                executing_ms: None,
                pushed_ms: None,
                committed_ms: None,
                trace: Some("9f8a6c2d01b4e37f".into()),
            }],
        });
        roundtrip(&Response::Error {
            message: "unknown plan 99".into(),
        });
    }

    #[test]
    fn specs_cross_the_wire_key_intact() {
        let s = spec();
        let line = encode(&Request::Submit {
            specs: vec![s.clone()],
            trace: None,
        })
        .expect("encode");
        let Request::Submit { specs, trace } = decode(&line).expect("decode") else {
            panic!("wrong variant");
        };
        assert_eq!(specs[0].key(), s.key());
        assert_eq!(trace, None);
    }

    #[test]
    fn garbage_and_truncated_frames_error_without_panic() {
        for bad in [
            "",
            "\n",
            "not json at all",
            "{\"Lease\":",
            "{\"Lease\":{\"worker\":1}}",
            "{\"NoSuchVariant\":{}}",
            "[1,2,3]",
            "{\"Hello\":{\"name\":7,\"jobs\":\"x\"}}",
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(
                decode::<Request>(bad).is_err(),
                "{bad:?} should be rejected"
            );
            assert!(
                decode::<Response>(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn absent_span_fields_keep_the_pre_span_wire_shape() {
        // A span-less coordinator/worker must emit exactly the frames
        // the pre-span protocol did: no `span`/`now_ms` keys at all.
        let lease = encode(&Response::Jobs {
            leases: vec![LeasedJob {
                job: 9,
                spec: spec(),
                span: None,
            }],
        })
        .expect("encode");
        assert!(!lease.contains("span"), "{lease}");
        let welcome = encode(&Response::Welcome {
            worker: 1,
            lease_ms: 30_000,
            protocol: PROTOCOL_VERSION,
            now_ms: None,
        })
        .expect("encode");
        assert!(!welcome.contains("now_ms"), "{welcome}");
        let push = encode(&Request::Push {
            worker: 3,
            job: 18,
            outcome: JobOutcome::Panicked {
                message: "x".into(),
            },
            profile: None,
            span: None,
        })
        .expect("encode");
        assert!(!push.contains("span"), "{push}");

        // Same rule for the trace fields this PR added: an untraced
        // submission, lease context, profile, and span emit no `trace`
        // key anywhere.
        let submit = encode(&Request::Submit {
            specs: vec![spec()],
            trace: None,
        })
        .expect("encode");
        assert!(!submit.contains("trace"), "{submit}");
        let lease = encode(&Response::Jobs {
            leases: vec![LeasedJob {
                job: 9,
                spec: spec(),
                span: Some(ProtoSpanContext {
                    plan: 1,
                    queued_ms: 3.0,
                    leased_ms: 8.25,
                    trace: None,
                }),
            }],
        })
        .expect("encode");
        assert!(!lease.contains("trace"), "{lease}");
        let profile = encode(&ProtoProfile {
            label: "abc".into(),
            scheme: None,
            trace: None,
            cached: false,
            wall_seconds: 0.1,
            cpu_seconds: None,
            allocations: None,
            allocated_bytes: None,
        })
        .expect("encode");
        assert!(!profile.contains("trace"), "{profile}");

        // And frames *without* those keys (from an old peer) decode.
        let old_welcome = "{\"Welcome\":{\"worker\":1,\"lease_ms\":30000,\"protocol\":1}}";
        let back: Response = decode(old_welcome).expect("old welcome decodes");
        assert_eq!(
            back,
            Response::Welcome {
                worker: 1,
                lease_ms: 30_000,
                protocol: PROTOCOL_VERSION,
                now_ms: None,
            }
        );
        let old_submit = format!(
            "{{\"Submit\":{{\"specs\":{}}}}}",
            serde_json::to_string(&vec![spec()]).expect("specs")
        );
        let back: Request = decode(&old_submit).expect("old submit decodes");
        assert_eq!(
            back,
            Request::Submit {
                specs: vec![spec()],
                trace: None,
            }
        );
    }

    #[test]
    fn spans_mirror_losslessly() {
        let mut span = JobSpan {
            plan: 2,
            job: 41,
            key: "deadbeef".into(),
            worker: "w-b".into(),
            trace: "9f8a6c2d01b4e37f".into(),
            stamps: [Some(1.0), Some(2.0), Some(3.5), None, None],
        };
        let proto = ProtoSpan::from(&span);
        assert_eq!(proto.executing_ms, Some(3.5));
        assert_eq!(proto.pushed_ms, None);
        assert_eq!(proto.trace.as_deref(), Some("9f8a6c2d01b4e37f"));
        let back = JobSpan::from(proto);
        assert_eq!(back, span);
        span.stamps = [None; horus_obs::span::STAGES];
        span.trace = String::new();
        assert_eq!(ProtoSpan::from(&span).trace, None, "empty trace is absent");
        assert_eq!(JobSpan::from(ProtoSpan::from(&span)), span);
    }

    #[test]
    fn profiles_mirror_losslessly() {
        let p = JobProfile {
            label: "abc".into(),
            scheme: None,
            trace: Some("9f8a6c2d01b4e37f".into()),
            cached: true,
            wall_seconds: 1.5,
            cpu_seconds: None,
            allocations: Some(10),
            allocated_bytes: Some(640),
        };
        let proto = ProtoProfile::from(p.clone());
        let back = JobProfile::from(proto);
        assert_eq!(back.label, p.label);
        assert_eq!(back.trace, p.trace);
        assert_eq!(back.cached, p.cached);
        assert_eq!(back.allocations, p.allocations);
    }
}
