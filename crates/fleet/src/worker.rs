//! The fleet worker: lease, execute on the local harness pool, push.
//!
//! A worker is one long-lived connection to the coordinator. It
//! registers with `Hello`, then loops: lease a batch (at most its local
//! pool width), run the batch through a plain [`Harness`] — the same
//! pool, panic isolation, and determinism as a local sweep — and push
//! every outcome (plus its host profile) back one `Push` at a time.
//! The worker runs cache-less: the coordinator owns the authoritative
//! result cache, and keys the coordinator already holds are committed
//! at submit time, so they never reach a worker at all.
//!
//! While the pool is busy, the main connection is silent for the length
//! of the batch — which can be far longer than the lease. A heartbeat
//! thread on its own connection sends `Renew` at a third of the lease
//! interval, so a healthy worker's leases never expire no matter how
//! long a job runs, while a killed worker stops renewing and forfeits
//! within one lease as designed.
//!
//! Exit paths: `Drained` from the coordinator (clean, after a drain),
//! EOF (coordinator closed — also treated as a drain, so a fleet being
//! torn down doesn't strand nonzero worker exits), or an I/O / protocol
//! error (reported as `Err`).

use crate::proto::{
    Connection, ProtoProfile, ProtoStageStamps, Request, Response, PROTOCOL_VERSION,
};
use horus_harness::{Harness, HarnessOptions, JobSpec, ProgressMode};
use horus_obs::{log, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker should run.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Display name (logs and per-worker metrics on the coordinator).
    pub name: String,
    /// Local pool width; `None` uses available parallelism.
    pub jobs: Option<usize>,
}

impl WorkerOptions {
    /// A worker for `coordinator` with a pid-derived name.
    #[must_use]
    pub fn new(coordinator: impl Into<String>) -> Self {
        WorkerOptions {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            jobs: None,
        }
    }
}

/// What one worker session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The coordinator-assigned worker id.
    pub worker: u64,
    /// Jobs executed and pushed.
    pub executed: usize,
    /// Lease batches processed.
    pub batches: usize,
}

/// Runs one worker session to completion (until the coordinator drains
/// or goes away).
///
/// # Errors
///
/// Returns a message on connect failure, protocol-version mismatch, or
/// a mid-session I/O / protocol error.
pub fn run_worker(options: &WorkerOptions) -> Result<WorkerSummary, String> {
    let mut conn = Connection::connect(&options.coordinator)?;
    // Local millisecond clock for the clock-offset measurement below.
    let clock = Instant::now();
    let t0 = local_ms(clock);
    conn.send(&Request::Hello {
        name: options.name.clone(),
        jobs: options.jobs.unwrap_or(0),
    })?;
    let (worker, lease_ms, offset_ms) = match conn.recv::<Response>()? {
        Some(Response::Welcome {
            worker,
            lease_ms,
            protocol,
            now_ms,
        }) => {
            if protocol != PROTOCOL_VERSION {
                return Err(format!(
                    "coordinator speaks protocol {protocol}, this worker speaks {PROTOCOL_VERSION}"
                ));
            }
            // A span-collecting coordinator reveals its clock in the
            // Welcome; halving the Hello→Welcome round trip against it
            // estimates `coordinator now − local now`, which normalizes
            // every local stamp to the coordinator timeline.
            let t1 = local_ms(clock);
            (worker, lease_ms, now_ms.map(|now| now - (t0 + t1) / 2.0))
        }
        Some(other) => return Err(format!("expected Welcome, got {other:?}")),
        None => return Err("coordinator closed the connection during hello".to_owned()),
    };
    log::info(
        "fleet-worker",
        "registered with coordinator",
        &[
            ("worker", &worker.to_string()),
            ("name", &options.name),
            ("tracing", if offset_ms.is_some() { "on" } else { "off" }),
        ],
    );
    let heartbeat = Heartbeat::start(&options.coordinator, worker, lease_ms);
    let result = worker_loop(&mut conn, worker, options, clock, offset_ms);
    drop(heartbeat);
    result
}

/// Milliseconds elapsed on the worker's local span clock.
fn local_ms(clock: Instant) -> f64 {
    clock.elapsed().as_secs_f64() * 1e3
}

/// The lease/execute/push loop, split out so [`run_worker`]'s many exit
/// paths all stop the heartbeat on the way out.
fn worker_loop(
    conn: &mut Connection,
    worker: u64,
    options: &WorkerOptions,
    clock: Instant,
    offset_ms: Option<f64>,
) -> Result<WorkerSummary, String> {
    // Job profiles are only collected when a registry is attached; the
    // worker keeps a private one so every pushed outcome can carry its
    // host profile back to the coordinator's obs summary.
    let registry = Registry::shared();
    let harness = Harness::new(HarnessOptions {
        jobs: options.jobs,
        no_cache: true,
        progress: ProgressMode::Silent,
        metrics: Some(Arc::clone(&registry)),
        ..HarnessOptions::default()
    });
    let batch = harness.jobs();

    let worker_s = worker.to_string();
    let mut summary = WorkerSummary {
        worker,
        executed: 0,
        batches: 0,
    };
    loop {
        conn.send(&Request::Lease { worker, max: batch })?;
        match conn.recv::<Response>()? {
            Some(Response::Jobs { leases }) => {
                summary.batches += 1;
                let specs: Vec<JobSpec> = leases.iter().map(|l| l.spec.clone()).collect();
                {
                    // One line per batch, naming every distinct trace it
                    // serves, so fleet logs join back to the requests.
                    let mut traces: Vec<&str> = leases
                        .iter()
                        .filter_map(|l| l.span.as_ref().and_then(|s| s.trace.as_deref()))
                        .collect();
                    traces.sort_unstable();
                    traces.dedup();
                    let jobs = leases.len().to_string();
                    let mut fields: Vec<(&str, &str)> =
                        vec![("worker", &worker_s), ("jobs", &jobs)];
                    let joined;
                    if !traces.is_empty() {
                        joined = traces.join(",");
                        fields.push(("trace_id", &joined));
                    }
                    log::info("fleet-worker", "batch leased", &fields);
                }
                let batch_start_ms = local_ms(clock);
                let report = harness.run(&specs);
                let mut profiles: HashMap<String, ProtoProfile> = harness
                    .take_job_profiles()
                    .into_iter()
                    .map(|p| (p.label.clone(), ProtoProfile::from(p)))
                    .collect();
                for (lease, outcome) in leases.iter().zip(report.outcomes) {
                    summary.executed += 1;
                    let lease_trace = lease.span.as_ref().and_then(|s| s.trace.as_deref());
                    // Stage stamps ride along only when the lease was
                    // traced and the Welcome carried the coordinator
                    // clock; both are already coordinator-relative.
                    let span = match (&lease.span, offset_ms) {
                        (Some(_), Some(off)) => Some(ProtoStageStamps {
                            executing_ms: batch_start_ms + off,
                            pushed_ms: local_ms(clock) + off,
                        }),
                        _ => None,
                    };
                    // The lease's trace is authoritative: it replaces
                    // whatever the worker-local harness minted for its
                    // own batch (a local-only id no other signal knows).
                    let profile = profiles.remove(&lease.spec.key()).map(|mut p| {
                        p.trace = lease_trace.map(str::to_string);
                        p
                    });
                    if let Some(trace) = lease_trace {
                        log::debug(
                            "fleet-worker",
                            "job pushed",
                            &[
                                ("worker", &worker_s),
                                ("job", &lease.job.to_string()),
                                ("trace_id", trace),
                            ],
                        );
                    }
                    conn.send(&Request::Push {
                        worker,
                        job: lease.job,
                        outcome,
                        profile,
                        span,
                    })?;
                    match conn.recv::<Response>()? {
                        Some(Response::Ack) => {}
                        Some(other) => return Err(format!("expected Ack, got {other:?}")),
                        None => return Ok(summary), // coordinator went away post-push
                    }
                }
            }
            Some(Response::Retry { after_ms }) => {
                std::thread::sleep(Duration::from_millis(after_ms.clamp(10, 5_000)));
            }
            Some(Response::Drained) | None => {
                // Clean exit: drained, or the coordinator closed the
                // socket while tearing the fleet down.
                log::info(
                    "fleet-worker",
                    "drained",
                    &[
                        ("worker", &worker.to_string()),
                        ("executed", &summary.executed.to_string()),
                        ("batches", &summary.batches.to_string()),
                    ],
                );
                return Ok(summary);
            }
            Some(Response::Error { message }) => {
                return Err(format!("coordinator rejected the session: {message}"));
            }
            Some(other) => return Err(format!("unexpected lease response: {other:?}")),
        }
    }
}

/// A background thread renewing this worker's leases while the main
/// connection is busy executing a batch. Dropping it stops the thread.
///
/// Best-effort by design: if the side connection cannot be set up or
/// dies mid-session, the worker keeps running — it merely falls back to
/// pre-renewal behavior, where only batches shorter than the lease are
/// safe. The coordinator treats a renewal for an unknown or lease-less
/// worker as a no-op, so the heartbeat can never corrupt a run.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Heartbeat {
    fn start(coordinator: &str, worker: u64, lease_ms: u64) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let interval = Duration::from_millis((lease_ms / 3).max(50));
        let thread = Connection::connect(coordinator).ok().map(|mut conn| {
            // A renewal answer should come back immediately; a stuck
            // read means the coordinator is gone and the thread should
            // find out rather than pin its join forever.
            let _ = conn.set_read_timeout(Duration::from_secs(10));
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("fleet-heartbeat-{worker}"))
                .spawn(move || {
                    loop {
                        // Sleep in short slices so dropping the
                        // heartbeat never waits out a full interval.
                        let wake = Instant::now() + interval;
                        while Instant::now() < wake {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        if conn.send(&Request::Renew { worker }).is_err() {
                            return;
                        }
                        match conn.recv::<Response>() {
                            Ok(Some(Response::Ack)) => {}
                            // Anything else — EOF, timeout, a protocol
                            // surprise — means renewals are over.
                            _ => return,
                        }
                    }
                })
                .expect("spawn fleet heartbeat thread")
        });
        Heartbeat { stop, thread }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
