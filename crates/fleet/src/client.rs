//! The submitting side: a [`SweepBackend`] that ships plans to a fleet
//! coordinator.
//!
//! `Harness::run` with a [`FleetBackend`] attached behaves exactly like
//! a local run — same outcomes, same order, same report — except the
//! simulations happen wherever the fleet's workers are. Each `run_specs`
//! call opens a fresh connection, submits the plan, and blocks in
//! `WaitPlan` until the coordinator has merged every outcome.

use crate::proto::{Connection, Request, Response};
use horus_harness::{JobOutcome, JobSpec, SweepBackend};
use horus_obs::span::JobSpan;

/// A handle on a remote fleet coordinator.
#[derive(Debug, Clone)]
pub struct FleetBackend {
    addr: String,
}

impl FleetBackend {
    /// A backend submitting to the coordinator at `addr` (`host:port`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        FleetBackend { addr: addr.into() }
    }

    /// The coordinator address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Asks the coordinator for its queue counts — a cheap liveness
    /// probe: `(workers, pending, leased, done, plans_done)`.
    ///
    /// # Errors
    ///
    /// Returns a message when the coordinator is unreachable or answers
    /// out of protocol.
    pub fn status(&self) -> Result<(usize, usize, usize, usize, usize), String> {
        let mut conn = Connection::connect(&self.addr)?;
        conn.send(&Request::Status)?;
        match conn.recv::<Response>()? {
            Some(Response::Status {
                workers,
                pending,
                leased,
                done,
                plans_done,
            }) => Ok((workers, pending, leased, done, plans_done)),
            Some(other) => Err(format!("expected Status, got {other:?}")),
            None => Err("coordinator closed the connection".to_owned()),
        }
    }

    /// Polls [`FleetBackend::status`] until the coordinator answers or
    /// `timeout` elapses — the startup handshake `horus-cli serve
    /// --fleet` uses so the service only reports ready once its
    /// execution backend exists. Returns the worker count from the
    /// first successful probe.
    ///
    /// # Errors
    ///
    /// Returns the last probe error when the coordinator never answers
    /// within `timeout`.
    pub fn wait_ready(&self, timeout: std::time::Duration) -> Result<usize, String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut last;
        loop {
            match self.status() {
                Ok((workers, ..)) => return Ok(workers),
                Err(e) => last = e,
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!(
                    "coordinator at {} not ready after {timeout:?}: {last}",
                    self.addr
                ));
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    /// Fetches every job span the coordinator has stamped so far, as
    /// [`JobSpan`]s ready for `horus_obs::span::chrome_trace_json`.
    /// Empty when the coordinator is not collecting spans.
    ///
    /// # Errors
    ///
    /// Returns a message when the coordinator is unreachable or answers
    /// out of protocol.
    pub fn fetch_trace(&self) -> Result<Vec<JobSpan>, String> {
        let mut conn = Connection::connect(&self.addr)?;
        conn.send(&Request::FleetTrace)?;
        match conn.recv::<Response>()? {
            Some(Response::FleetTrace { spans }) => {
                Ok(spans.into_iter().map(JobSpan::from).collect())
            }
            Some(other) => Err(format!("expected FleetTrace, got {other:?}")),
            None => Err("coordinator closed the connection".to_owned()),
        }
    }
}

impl SweepBackend for FleetBackend {
    fn run_specs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String> {
        self.run_specs_traced(specs, None)
    }

    fn run_specs_traced(
        &self,
        specs: &[JobSpec],
        trace: Option<&str>,
    ) -> Result<Vec<JobOutcome>, String> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let mut conn = Connection::connect(&self.addr)?;
        conn.send(&Request::Submit {
            specs: specs.to_vec(),
            trace: trace.filter(|t| !t.is_empty()).map(str::to_string),
        })?;
        let plan = match conn.recv::<Response>()? {
            Some(Response::Submitted { plan, jobs, .. }) => {
                if jobs != specs.len() {
                    return Err(format!(
                        "coordinator enqueued {jobs} jobs for {} specs",
                        specs.len()
                    ));
                }
                plan
            }
            Some(Response::Error { message }) => return Err(message),
            Some(other) => return Err(format!("expected Submitted, got {other:?}")),
            None => return Err("coordinator closed the connection during submit".to_owned()),
        };
        conn.send(&Request::WaitPlan { plan })?;
        match conn.recv::<Response>()? {
            Some(Response::PlanDone {
                plan: done,
                outcomes,
            }) => {
                if done != plan {
                    return Err(format!(
                        "waited on plan {plan}, coordinator answered {done}"
                    ));
                }
                Ok(outcomes)
            }
            Some(Response::Error { message }) => Err(message),
            Some(other) => Err(format!("expected PlanDone, got {other:?}")),
            None => Err("coordinator closed the connection while the plan was running".to_owned()),
        }
    }

    fn describe(&self) -> String {
        format!("fleet coordinator at {}", self.addr)
    }
}
