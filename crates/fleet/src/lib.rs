//! Distributed coordinator/worker experiment fleet with deterministic
//! merge.
//!
//! One machine cannot always hold a full Horus evaluation sweep, and a
//! sweep spread across machines is worthless if the distribution can
//! change the answer. This crate scales the `horus-harness` contract —
//! *a sweep report is a pure function of the submitted job list* —
//! across a TCP fleet:
//!
//! ```text
//!   harness ──Submit/WaitPlan──▶ coordinator ◀──Hello/Lease/Push── workers
//!   (FleetBackend)              (JobQueue +                       (local
//!                                ResultCache)                      Harness)
//! ```
//!
//! * The [`coordinator`](crate::coordinator::Coordinator) owns a
//!   durable [`queue::JobQueue`] and the authoritative result cache.
//!   Dispatch is **at-least-once** per job slot (lease timeouts requeue
//!   work from dead workers with bounded backoff); commit is
//!   **exactly-once** per [`JobSpec::key`](horus_harness::JobSpec)
//!   content key; the merge is **plan-ordered** — so fleet output is
//!   byte-identical to a local `Harness::run` of the same specs.
//! * [`worker::run_worker`] leases batches and executes them on the
//!   ordinary local harness pool, pushing outcomes and per-job host
//!   profiles back.
//! * [`client::FleetBackend`] plugs into
//!   [`HarnessOptions::backend`](horus_harness::HarnessOptions), so any
//!   harness caller — `horus-cli sweep`, `repro-all`, tests — becomes a
//!   fleet submitter with one flag.
//!
//! Everything is `std`-only: line-delimited JSON over `TcpStream`,
//! `Mutex` + `Condvar` coordination, `std::thread` concurrency — the
//! same dependency budget as the rest of the workspace.

#![forbid(unsafe_code)]

pub mod client;
pub mod coordinator;
pub mod proto;
pub mod queue;
pub mod worker;

pub use client::FleetBackend;
pub use coordinator::{Coordinator, CoordinatorOptions};
pub use proto::{Request, Response, PROTOCOL_VERSION};
pub use queue::JobQueue;
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
