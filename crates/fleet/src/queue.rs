//! The coordinator's job queue: at-least-once dispatch, exactly-once
//! commit, deterministic plan-order merge.
//!
//! Jobs are identified two ways and the distinction carries the whole
//! design:
//!
//! * A **job id** names one enqueued slot. Ids are what workers lease
//!   and push against, so a retried job (lease expired, worker died) is
//!   the *same* slot — dispatch is at-least-once per id.
//! * A **content key** ([`JobSpec::key`]) names the experiment point.
//!   Commits are keyed by content: the first outcome to arrive for a
//!   key commits every slot sharing it, and later pushes for the same
//!   key are ignored. Because specs execute deterministically, the
//!   discarded duplicates are byte-identical to the committed one —
//!   exactly-once commit costs nothing.
//!
//! A plan remembers its job ids in submission order, and
//! [`JobQueue::plan_outcomes`] assembles outcomes in that order — so
//! the merged result of a fleet run is byte-identical to a local
//! `Harness::run` over the same specs, no matter how many workers
//! raced, died, or duplicated work along the way.
//!
//! Expired leases requeue with bounded exponential backoff
//! (`250ms * 2^attempts`, capped at 30s) so a spec that kills every
//! worker that touches it cannot busy-loop the fleet.

use horus_harness::{JobOutcome, JobSpec, ResultCache};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Requeue backoff base: first retry waits this long.
pub const BACKOFF_BASE: Duration = Duration::from_millis(250);
/// Requeue backoff cap.
pub const BACKOFF_CAP: Duration = Duration::from_secs(30);

/// Where one job slot is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting to be leased (not before the embedded instant, which
    /// encodes requeue backoff).
    Pending {
        /// Earliest instant the slot may be leased again.
        not_before: Instant,
    },
    /// Held by a worker until the deadline.
    Leased {
        /// The holder's worker id.
        worker: u64,
        /// Lease expiry; past it the slot requeues.
        deadline: Instant,
    },
    /// Committed; the outcome lives in the slot.
    Done,
}

/// One enqueued job slot.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// The owning plan's id.
    pub plan: u64,
    /// The experiment point.
    pub spec: JobSpec,
    /// Cached [`JobSpec::key`] (hashing the spec once at submit).
    pub key: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Times the slot has been leased (first lease makes it 1).
    pub attempts: u32,
    /// The committed outcome, once [`JobState::Done`].
    pub outcome: Option<JobOutcome>,
}

/// One submitted sweep plan.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Job ids in submission (= merge) order.
    pub jobs: Vec<u64>,
    /// Slots committed so far.
    pub done: usize,
}

impl PlanEntry {
    /// True once every slot has committed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done == self.jobs.len()
    }
}

/// What [`JobQueue::submit`] enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submitted {
    /// The new plan's id.
    pub plan: u64,
    /// Total jobs in the plan.
    pub jobs: usize,
    /// Jobs committed immediately from the result cache.
    pub cached: usize,
}

/// The coordinator's authoritative job queue.
#[derive(Debug, Default)]
pub struct JobQueue {
    next_job: u64,
    next_plan: u64,
    jobs: BTreeMap<u64, JobEntry>,
    plans: BTreeMap<u64, PlanEntry>,
    /// First committed outcome per content key (the dedupe table).
    committed: HashMap<String, JobOutcome>,
    /// Plans fully committed, in completion order.
    plans_done: Vec<u64>,
    /// Lifetime count of expired-lease requeues.
    pub requeues: u64,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a plan. Specs whose key the `cache` already holds are
    /// committed on the spot as cache hits (workers never see them);
    /// specs whose key an earlier plan already committed reuse that
    /// outcome the same way.
    pub fn submit(&mut self, specs: Vec<JobSpec>, cache: Option<&ResultCache>) -> Submitted {
        let plan = self.next_plan;
        self.next_plan += 1;
        let mut ids = Vec::with_capacity(specs.len());
        let mut done = 0;
        let mut cached = 0;
        for spec in specs {
            let id = self.next_job;
            self.next_job += 1;
            let key = spec.key();
            let outcome = if let Some(result) = cache.and_then(|c| c.load(&spec)) {
                Some(JobOutcome::Completed {
                    result,
                    cached: true,
                })
            } else {
                self.committed.get(&key).cloned()
            };
            let state = if outcome.is_some() {
                done += 1;
                if matches!(outcome, Some(JobOutcome::Completed { cached: true, .. })) {
                    cached += 1;
                }
                JobState::Done
            } else {
                JobState::Pending {
                    not_before: Instant::now(),
                }
            };
            if let Some(o) = &outcome {
                self.committed
                    .entry(key.clone())
                    .or_insert_with(|| o.clone());
            }
            self.jobs.insert(
                id,
                JobEntry {
                    plan,
                    spec,
                    key,
                    state,
                    attempts: 0,
                    outcome,
                },
            );
            ids.push(id);
        }
        let total = ids.len();
        let entry = PlanEntry { jobs: ids, done };
        let complete = entry.is_complete();
        self.plans.insert(plan, entry);
        if complete {
            self.plans_done.push(plan);
        }
        Submitted {
            plan,
            jobs: total,
            cached,
        }
    }

    /// Leases up to `max` pending slots to `worker` until `now +
    /// lease`. Slots are offered in id order (oldest plan first), and a
    /// slot whose key is already committed commits on the spot instead
    /// of being handed out.
    pub fn lease(
        &mut self,
        worker: u64,
        max: usize,
        now: Instant,
        lease: Duration,
    ) -> Vec<(u64, JobSpec)> {
        let mut out = Vec::new();
        let mut short_circuit = Vec::new();
        for (&id, entry) in &mut self.jobs {
            if out.len() >= max {
                break;
            }
            let JobState::Pending { not_before } = entry.state else {
                continue;
            };
            if not_before > now {
                continue;
            }
            if self.committed.contains_key(&entry.key) {
                short_circuit.push(id);
                continue;
            }
            entry.state = JobState::Leased {
                worker,
                deadline: now + lease,
            };
            entry.attempts += 1;
            out.push((id, entry.spec.clone()));
        }
        for id in short_circuit {
            let key = self.jobs[&id].key.clone();
            let outcome = self.committed[&key].clone();
            self.commit_slot(id, outcome);
        }
        out
    }

    /// Commits `outcome` for job id `job`. The first commit for a
    /// content key wins and is fanned out to every slot sharing the
    /// key; later pushes for an already-committed key are ignored
    /// (specs are deterministic, so the dropped duplicate is
    /// byte-identical anyway). Freshly computed results are stored into
    /// `cache`. Returns the ids of plans this commit completed.
    pub fn commit(
        &mut self,
        job: u64,
        outcome: JobOutcome,
        cache: Option<&ResultCache>,
    ) -> Vec<u64> {
        let Some(entry) = self.jobs.get(&job) else {
            return Vec::new();
        };
        let key = entry.key.clone();
        if self.committed.contains_key(&key) {
            // Duplicate push (lease expired, both workers finished).
            return Vec::new();
        }
        if let JobOutcome::Completed {
            result,
            cached: false,
        } = &outcome
        {
            if let Some(cache) = cache {
                cache.store(&entry.spec, result);
            }
        }
        self.committed.insert(key.clone(), outcome.clone());
        let sharing: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.key == key && e.state != JobState::Done)
            .map(|(&id, _)| id)
            .collect();
        let mut completed = Vec::new();
        for id in sharing {
            completed.extend(self.commit_slot(id, outcome.clone()));
        }
        completed
    }

    /// Marks one slot done and updates its plan; returns the plan id if
    /// this was its last open slot.
    fn commit_slot(&mut self, id: u64, outcome: JobOutcome) -> Option<u64> {
        let entry = self.jobs.get_mut(&id)?;
        if entry.state == JobState::Done {
            return None;
        }
        entry.state = JobState::Done;
        entry.outcome = Some(outcome);
        let plan = entry.plan;
        let p = self.plans.get_mut(&plan)?;
        p.done += 1;
        if p.is_complete() {
            self.plans_done.push(plan);
            Some(plan)
        } else {
            None
        }
    }

    /// Extends every lease held by `worker` to `now + lease`. A worker
    /// mid-batch renews at a fraction of the lease, so a healthy worker
    /// can hold a job for any duration while a dead one still forfeits
    /// within one lease of its last heartbeat. Returns how many leases
    /// were renewed.
    pub fn renew(&mut self, worker: u64, now: Instant, lease: Duration) -> usize {
        let mut renewed = 0;
        for entry in self.jobs.values_mut() {
            let JobState::Leased {
                worker: holder,
                deadline,
            } = &mut entry.state
            else {
                continue;
            };
            if *holder == worker {
                *deadline = now + lease;
                renewed += 1;
            }
        }
        renewed
    }

    /// Requeues every lease whose deadline has passed, with bounded
    /// exponential backoff per slot. Returns how many were requeued.
    pub fn expire(&mut self, now: Instant) -> usize {
        let mut expired = 0;
        for entry in self.jobs.values_mut() {
            let JobState::Leased { deadline, .. } = entry.state else {
                continue;
            };
            if deadline > now {
                continue;
            }
            let shift = entry.attempts.min(7); // 250ms << 7 = 32s > cap
            let backoff = BACKOFF_CAP.min(BACKOFF_BASE * 2u32.pow(shift));
            entry.state = JobState::Pending {
                not_before: now + backoff,
            };
            expired += 1;
        }
        self.requeues += expired as u64;
        expired
    }

    /// A slot's `(plan, content key, already committed)` triple — what
    /// span stamping needs around a lease or push — or `None` for an
    /// unknown job id.
    #[must_use]
    pub fn job_info(&self, job: u64) -> Option<(u64, &str, bool)> {
        self.jobs
            .get(&job)
            .map(|e| (e.plan, e.key.as_str(), e.state == JobState::Done))
    }

    /// The plan's `(job id, content key)` pairs in submission order;
    /// empty for an unknown plan id.
    #[must_use]
    pub fn plan_jobs(&self, plan: u64) -> Vec<(u64, String)> {
        self.plans
            .get(&plan)
            .map(|p| {
                p.jobs
                    .iter()
                    .filter_map(|id| self.jobs.get(id).map(|e| (*id, e.key.clone())))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The plan's outcomes in submission order, once complete; `None`
    /// while any slot is open or for an unknown plan id.
    #[must_use]
    pub fn plan_outcomes(&self, plan: u64) -> Option<Vec<JobOutcome>> {
        let p = self.plans.get(&plan)?;
        if !p.is_complete() {
            return None;
        }
        p.jobs
            .iter()
            .map(|id| self.jobs.get(id).and_then(|e| e.outcome.clone()))
            .collect()
    }

    /// Number of fully committed plans.
    #[must_use]
    pub fn plans_done(&self) -> usize {
        self.plans_done.len()
    }

    /// `(pending, leased, done)` slot counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut pending = 0;
        let mut leased = 0;
        let mut done = 0;
        for e in self.jobs.values() {
            match e.state {
                JobState::Pending { .. } => pending += 1,
                JobState::Leased { .. } => leased += 1,
                JobState::Done => done += 1,
            }
        }
        (pending, leased, done)
    }

    /// True when no slot is pending or leased.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        let (pending, leased, _) = self.counts();
        pending == 0 && leased == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::{DrainScheme, SystemConfig};
    use horus_workload::FillPattern;

    fn specs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                let mut cfg = SystemConfig::small_test();
                cfg.seed ^= i as u64;
                JobSpec::drain(
                    &cfg,
                    DrainScheme::NonSecure,
                    FillPattern::DenseSequential { base: 0 },
                )
            })
            .collect()
    }

    fn outcome(spec: &JobSpec) -> JobOutcome {
        JobOutcome::Completed {
            result: spec.execute(),
            cached: false,
        }
    }

    #[test]
    fn lease_commit_completes_a_plan_in_order() {
        let mut q = JobQueue::new();
        let specs = specs(3);
        let sub = q.submit(specs.clone(), None);
        assert_eq!((sub.jobs, sub.cached), (3, 0));
        let now = Instant::now();
        let leased = q.lease(1, 10, now, Duration::from_secs(30));
        assert_eq!(leased.len(), 3);
        assert!(q.plan_outcomes(sub.plan).is_none());
        // Commit out of order; the merge stays in submission order.
        for (id, spec) in leased.iter().rev() {
            q.commit(*id, outcome(spec), None);
        }
        let merged = q.plan_outcomes(sub.plan).expect("complete");
        let expect: Vec<JobOutcome> = specs.iter().map(outcome).collect();
        assert_eq!(merged, expect);
        assert_eq!(q.plans_done(), 1);
        assert!(q.is_idle());
    }

    #[test]
    fn expired_leases_requeue_with_backoff_and_finish_elsewhere() {
        let mut q = JobQueue::new();
        let specs = specs(2);
        let sub = q.submit(specs.clone(), None);
        let t0 = Instant::now();
        let lease = Duration::from_millis(100);
        let held = q.lease(1, 10, t0, lease);
        assert_eq!(held.len(), 2);
        // Worker 1 dies; nothing leasable until expiry.
        assert!(q.lease(2, 10, t0, lease).is_empty());
        assert_eq!(q.expire(t0), 0, "deadline not reached yet");
        let t1 = t0 + lease + Duration::from_millis(1);
        assert_eq!(q.expire(t1), 2);
        assert_eq!(q.requeues, 2);
        // Backoff: attempt 1 waits 500ms from requeue.
        assert!(q.lease(2, 10, t1, lease).is_empty(), "still backing off");
        let t2 = t1 + Duration::from_millis(501);
        let retried = q.lease(2, 10, t2, lease);
        assert_eq!(retried.len(), 2);
        for (id, spec) in &retried {
            q.commit(*id, outcome(spec), None);
        }
        assert_eq!(
            q.plan_outcomes(sub.plan).expect("complete"),
            specs.iter().map(outcome).collect::<Vec<_>>()
        );
    }

    #[test]
    fn renewed_leases_outlive_the_deadline_only_for_their_holder() {
        let mut q = JobQueue::new();
        let specs = specs(2);
        q.submit(specs, None);
        let t0 = Instant::now();
        let lease = Duration::from_millis(100);
        let held_1 = q.lease(1, 1, t0, lease);
        let held_2 = q.lease(2, 1, t0, lease);
        assert_eq!((held_1.len(), held_2.len()), (1, 1));
        // Worker 1 heartbeats just before the deadline; worker 2 is
        // silent. Only worker 2's slot requeues.
        let t1 = t0 + Duration::from_millis(90);
        assert_eq!(q.renew(1, t1, lease), 1);
        let t2 = t0 + lease + Duration::from_millis(1);
        assert_eq!(q.expire(t2), 1);
        let (pending, leased, _) = q.counts();
        assert_eq!((pending, leased), (1, 1), "worker 1 still holds its job");
        // Renewing for a worker with no leases is a no-op.
        assert_eq!(q.renew(7, t2, lease), 0);
    }

    #[test]
    fn duplicate_pushes_commit_exactly_once() {
        let mut q = JobQueue::new();
        let specs = specs(1);
        let sub = q.submit(specs.clone(), None);
        let t0 = Instant::now();
        let lease = Duration::from_millis(50);
        let first = q.lease(1, 1, t0, lease);
        q.expire(t0 + lease * 2);
        let second = q.lease(2, 1, t0 + Duration::from_secs(10), lease);
        assert_eq!(first[0].0, second[0].0, "same slot, retried");
        // Both workers finish; only the first commit lands.
        let done = q.commit(second[0].0, outcome(&specs[0]), None);
        assert_eq!(done, vec![sub.plan]);
        let done = q.commit(first[0].0, outcome(&specs[0]), None);
        assert!(done.is_empty(), "duplicate push ignored");
        assert_eq!(
            q.plan_outcomes(sub.plan).expect("complete").len(),
            1,
            "merge sees the job exactly once"
        );
    }

    #[test]
    fn same_key_slots_share_one_execution() {
        let mut q = JobQueue::new();
        let spec = specs(1).remove(0);
        let sub = q.submit(vec![spec.clone(), spec.clone()], None);
        let t0 = Instant::now();
        let leased = q.lease(1, 10, t0, Duration::from_secs(30));
        assert_eq!(leased.len(), 2, "both slots lease before either commits");
        let done = q.commit(leased[0].0, outcome(&spec), None);
        assert_eq!(done, vec![sub.plan], "commit fans out to the shared key");
        assert_eq!(q.plan_outcomes(sub.plan).expect("complete").len(), 2);
    }

    #[test]
    fn cache_hits_commit_at_submit_and_persist_fresh_results() {
        let dir = std::env::temp_dir().join(format!(
            "horus-fleet-queue-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let cache = ResultCache::new(&dir);
        let mut q = JobQueue::new();
        let specs = specs(2);
        let sub = q.submit(specs.clone(), Some(&cache));
        assert_eq!(sub.cached, 0);
        let leased = q.lease(1, 10, Instant::now(), Duration::from_secs(30));
        for (id, spec) in &leased {
            q.commit(*id, outcome(spec), Some(&cache));
        }
        // A second submit of the same plan is satisfied from the cache
        // alone: all hits, no leasable work.
        let mut q2 = JobQueue::new();
        let sub2 = q2.submit(specs.clone(), Some(&cache));
        assert_eq!(sub2.cached, 2);
        assert!(q2.is_idle());
        let merged = q2.plan_outcomes(sub2.plan).expect("complete at submit");
        assert!(merged
            .iter()
            .all(|o| matches!(o, JobOutcome::Completed { cached: true, .. })));
        // The cached payloads are byte-identical to fresh execution.
        let fresh: Vec<JobOutcome> = specs.iter().map(outcome).collect();
        for (c, f) in merged.iter().zip(&fresh) {
            let (JobOutcome::Completed { result: a, .. }, JobOutcome::Completed { result: b, .. }) =
                (c, f)
            else {
                panic!("completed outcomes");
            };
            assert_eq!(a, b);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_info_and_plan_jobs_track_the_lifecycle() {
        let mut q = JobQueue::new();
        let specs = specs(2);
        let keys: Vec<String> = specs.iter().map(JobSpec::key).collect();
        let sub = q.submit(specs.clone(), None);
        let jobs = q.plan_jobs(sub.plan);
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs.iter().map(|(_, k)| k.clone()).collect::<Vec<_>>(),
            keys,
            "submission order"
        );
        let (id0, _) = jobs[0];
        assert_eq!(q.job_info(id0), Some((sub.plan, keys[0].as_str(), false)));
        let leased = q.lease(1, 10, Instant::now(), Duration::from_secs(30));
        q.commit(leased[0].0, outcome(&specs[0]), None);
        assert_eq!(q.job_info(id0), Some((sub.plan, keys[0].as_str(), true)));
        assert_eq!(q.job_info(999), None);
        assert!(q.plan_jobs(999).is_empty());
    }

    #[test]
    fn empty_plan_is_complete_immediately() {
        let mut q = JobQueue::new();
        let sub = q.submit(Vec::new(), None);
        assert_eq!(q.plan_outcomes(sub.plan), Some(Vec::new()));
        assert_eq!(q.plans_done(), 1);
    }
}
