//! Cache models for the Horus secure-EPD reproduction.
//!
//! Two layers:
//!
//! * [`SetAssocCache`] — a generic set-associative, write-back, LRU cache
//!   of 64-byte blocks. It is used both for the processor caches and for
//!   the security-metadata caches (counter / MAC / Merkle-tree caches of
//!   the paper's Table I).
//! * [`CacheHierarchy`] — the three-level L1/L2/LLC hierarchy whose dirty
//!   contents must be drained to NVM when power fails (the paper's
//!   64 KB L1, 2 MB L2, 16 MB inclusive LLC by default).
//!
//! The caches are *functional*: they hold real block bytes, so the drain
//! engines in `horus-core` encrypt and MAC actual data.
//!
//! # Example
//!
//! ```
//! use horus_cache::{CacheGeometry, SetAssocCache};
//!
//! let mut c = SetAssocCache::new(CacheGeometry::new("L1", 64 * 1024, 2));
//! assert_eq!(c.capacity_lines(), 1024);
//! c.insert(0x40, [7u8; 64], true);
//! assert_eq!(c.lookup(0x40), Some(&[7u8; 64]));
//! assert_eq!(c.hits(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod set_assoc;

pub use hierarchy::{CacheHierarchy, HierarchyConfig};
pub use set_assoc::{CacheGeometry, EvictedLine, ReplacementPolicy, SetAssocCache};

/// Size in bytes of a cache block throughout the system.
pub const BLOCK_SIZE: usize = 64;

/// Log2 of [`BLOCK_SIZE`], for address arithmetic.
pub const BLOCK_SHIFT: u32 = 6;

/// A 64-byte cache block.
pub type Block = [u8; BLOCK_SIZE];

/// Returns `addr` aligned down to a block boundary.
///
/// ```
/// assert_eq!(horus_cache::block_align(0x47), 0x40);
/// assert_eq!(horus_cache::block_align(0x40), 0x40);
/// ```
#[must_use]
pub fn block_align(addr: u64) -> u64 {
    addr & !(BLOCK_SIZE as u64 - 1)
}

/// Whether `addr` is block-aligned.
#[must_use]
pub fn is_block_aligned(addr: u64) -> bool {
    addr % BLOCK_SIZE as u64 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        assert_eq!(block_align(0), 0);
        assert_eq!(block_align(63), 0);
        assert_eq!(block_align(64), 64);
        assert_eq!(block_align(130), 128);
        assert!(is_block_aligned(0));
        assert!(is_block_aligned(128));
        assert!(!is_block_aligned(1));
    }
}
