//! The L1/L2/LLC processor cache hierarchy.
//!
//! In an EPD (eADR) system the whole hierarchy is inside the persistence
//! domain: on power failure, every dirty line must reach NVM. This module
//! models the hierarchy's *contents* — the set of dirty lines at crash
//! time — plus a simple run-time access path used by the examples and
//! tests. The drain engines in `horus-core` consume
//! [`CacheHierarchy::drain_order`].

use crate::set_assoc::{CacheGeometry, EvictedLine, SetAssocCache};
use crate::Block;
use serde::{Deserialize, Serialize};

/// Sizes and associativities of the three levels.
///
/// The default is the paper's Table I configuration: 64 KB 2-way L1,
/// 2 MB 8-way L2, 16 MB 16-way inclusive LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Last-level cache size in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
}

impl HierarchyConfig {
    /// The paper's Table I hierarchy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            l1_bytes: 64 * 1024,
            l1_ways: 2,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 8,
            llc_bytes: 16 * 1024 * 1024,
            llc_ways: 16,
        }
    }

    /// The Table I hierarchy with a different LLC size (the Figures 14-16
    /// sensitivity sweeps use 8 MB .. 128 MB).
    ///
    /// # Panics
    ///
    /// Panics if `llc_bytes` does not produce a power-of-two set count
    /// with 16 ways.
    #[must_use]
    pub fn with_llc_bytes(llc_bytes: u64) -> Self {
        let mut cfg = Self::paper_default();
        cfg.llc_bytes = llc_bytes;
        // Validate eagerly so misconfigurations fail at build time, not
        // mid-experiment.
        let _ = CacheGeometry::new("LLC", cfg.llc_bytes, cfg.llc_ways);
        cfg
    }

    /// Total number of cache lines across all three levels — the worst
    /// case number of blocks an EPD drain must flush.
    ///
    /// For the paper default this is 295 936, the block count quoted in
    /// Figure 6.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        (self.l1_bytes + self.l2_bytes + self.llc_bytes) / crate::BLOCK_SIZE as u64
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The three-level cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy from `config`.
    #[must_use]
    pub fn new(config: &HierarchyConfig) -> Self {
        Self {
            l1: SetAssocCache::new(CacheGeometry::new("L1", config.l1_bytes, config.l1_ways)),
            l2: SetAssocCache::new(CacheGeometry::new("L2", config.l2_bytes, config.l2_ways)),
            llc: SetAssocCache::new(CacheGeometry::new("LLC", config.llc_bytes, config.llc_ways)),
        }
    }

    /// The L1 cache.
    #[must_use]
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// The L2 cache.
    #[must_use]
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// The last-level cache.
    #[must_use]
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Mutable access to a level by index (0 = L1, 1 = L2, 2 = LLC), used
    /// by workload generators installing a crash-time snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `level > 2`.
    pub fn level_mut(&mut self, level: usize) -> &mut SetAssocCache {
        match level {
            0 => &mut self.l1,
            1 => &mut self.l2,
            2 => &mut self.llc,
            _ => panic!("cache level {level} out of range (0..=2)"),
        }
    }

    /// The levels in drain order (L1 first, as upper levels hold the
    /// newest versions).
    #[must_use]
    pub fn levels(&self) -> [&SetAssocCache; 3] {
        [&self.l1, &self.l2, &self.llc]
    }

    /// A run-time write: allocates in L1, spilling evictions down the
    /// hierarchy; returns any dirty line evicted from the LLC (which the
    /// memory controller must write to NVM).
    pub fn write(&mut self, addr: u64, data: Block) -> Option<EvictedLine> {
        let mut spilled = self.l1.insert(addr, data, true);
        if let Some(v) = spilled {
            spilled = self.l2.insert(v.addr, v.data, v.dirty);
        } else {
            return None;
        }
        if let Some(v) = spilled {
            let out = self.llc.insert(v.addr, v.data, v.dirty);
            return out.filter(|l| l.dirty);
        }
        None
    }

    /// Fills a block read from memory into L1 in clean state, spilling
    /// evictions down the hierarchy; returns any dirty line evicted from
    /// the LLC.
    pub fn fill(&mut self, addr: u64, data: Block) -> Option<EvictedLine> {
        let mut spilled = self.l1.insert(addr, data, false);
        if let Some(v) = spilled {
            spilled = self.l2.insert(v.addr, v.data, v.dirty);
        } else {
            return None;
        }
        if let Some(v) = spilled {
            let out = self.llc.insert(v.addr, v.data, v.dirty);
            return out.filter(|l| l.dirty);
        }
        None
    }

    /// A run-time read: returns the block if any level holds it (L1 wins),
    /// without modelling fills.
    pub fn read(&mut self, addr: u64) -> Option<Block> {
        if let Some(b) = self.l1.lookup(addr) {
            return Some(*b);
        }
        if let Some(b) = self.l2.lookup(addr) {
            return Some(*b);
        }
        self.llc.lookup(addr).copied()
    }

    /// Total dirty lines across all levels, counting each address once
    /// (the upper level owns the newest version).
    #[must_use]
    pub fn dirty_unique(&self) -> u64 {
        self.drain_order().len() as u64
    }

    /// Unique dirty lines contributed by each level in drain order
    /// (`[L1, L2, LLC]`): a line shadowed by a dirty upper-level copy is
    /// counted at the upper level, matching [`CacheHierarchy::drain_order`].
    /// The probe layer reports these as per-level walk markers.
    #[must_use]
    pub fn dirty_per_level(&self) -> [u64; 3] {
        let mut seen = std::collections::HashSet::new();
        let mut out = [0u64; 3];
        for (i, level) in self.levels().into_iter().enumerate() {
            for (addr, _, dirty) in level.iter() {
                if dirty && seen.insert(addr) {
                    out[i] += 1;
                }
            }
        }
        out
    }

    /// The crash-time drain list: every dirty line in the hierarchy in
    /// hardware walk order (L1 sets, then L2, then LLC), deduplicated so
    /// each address appears once with its newest data.
    ///
    /// This is exactly the stream of blocks the EPD back-up power must
    /// push to NVM.
    #[must_use]
    pub fn drain_order(&self) -> Vec<(u64, Block)> {
        let mut out = Vec::new();
        self.drain_order_into(&mut out);
        out
    }

    /// [`CacheHierarchy::drain_order`] into a caller-provided buffer, so
    /// per-episode callers can recycle the allocation (the buffer is
    /// cleared first; the contents are identical to `drain_order()`).
    pub fn drain_order_into(&self, out: &mut Vec<(u64, Block)>) {
        out.clear();
        let mut seen = std::collections::HashSet::new();
        for level in self.levels() {
            for (addr, data, dirty) in level.iter() {
                if dirty && seen.insert(addr) {
                    out.push((addr, *data));
                }
            }
        }
    }

    /// Empties every level (e.g. after a completed drain: the hierarchy
    /// has lost power).
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.llc.clear();
    }

    /// Installs a recovered block into the LLC in dirty state — the
    /// recovery path of Horus (§IV-C.3: "place them back in the LLC in
    /// dirty state"). Returns a dirty LLC victim if recovery overflows a
    /// set, which the caller must write back through the run-time path.
    pub fn restore_dirty(&mut self, addr: u64, data: Block) -> Option<EvictedLine> {
        self.llc.insert(addr, data, true).filter(|l| l.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig {
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l2_bytes: 8 * 64,
            l2_ways: 2,
            llc_bytes: 16 * 64,
            llc_ways: 2,
        })
    }

    fn blk(v: u8) -> Block {
        [v; 64]
    }

    #[test]
    fn paper_default_block_count_matches_figure6() {
        assert_eq!(HierarchyConfig::paper_default().total_lines(), 295_936);
    }

    #[test]
    fn with_llc_bytes_scales() {
        let cfg = HierarchyConfig::with_llc_bytes(8 * 1024 * 1024);
        assert_eq!(cfg.llc_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.l1_bytes, 64 * 1024);
    }

    #[test]
    fn write_allocates_in_l1() {
        let mut h = tiny();
        assert!(h.write(0, blk(1)).is_none());
        assert!(h.l1().is_dirty(0));
        assert_eq!(h.read(0), Some(blk(1)));
    }

    #[test]
    fn eviction_spills_down() {
        let mut h = tiny();
        // L1: 2 sets x 2 ways. Fill set 0 (stride = 2 sets * 64 = 128).
        h.write(0, blk(1));
        h.write(128, blk(2));
        h.write(256, blk(3)); // evicts LRU (0) into L2
        assert!(!h.l1().contains(0));
        assert!(h.l2().contains(0));
        assert_eq!(h.read(0), Some(blk(1)));
    }

    #[test]
    fn drain_order_dedups_upper_level_wins() {
        let mut h = tiny();
        h.level_mut(2).insert(0, blk(9), true); // stale LLC copy
        h.level_mut(0).insert(0, blk(1), true); // newest in L1
        let drained = h.drain_order();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0], (0, blk(1)));
    }

    #[test]
    fn drain_order_skips_clean_lines() {
        let mut h = tiny();
        h.level_mut(2).insert(0, blk(1), false);
        h.level_mut(2).insert(64, blk(2), true);
        let drained = h.drain_order();
        assert_eq!(drained, vec![(64, blk(2))]);
        assert_eq!(h.dirty_unique(), 1);
    }

    #[test]
    fn dirty_per_level_matches_drain_order() {
        let mut h = tiny();
        h.level_mut(0).insert(0, blk(1), true);
        h.level_mut(1).insert(0, blk(2), true); // shadowed by L1
        h.level_mut(1).insert(64, blk(3), true);
        h.level_mut(2).insert(128, blk(4), true);
        h.level_mut(2).insert(192, blk(5), false);
        let per_level = h.dirty_per_level();
        assert_eq!(per_level, [1, 1, 1]);
        assert_eq!(per_level.iter().sum::<u64>(), h.dirty_unique());
    }

    #[test]
    fn clear_empties_all_levels() {
        let mut h = tiny();
        h.write(0, blk(1));
        h.level_mut(2).insert(64, blk(2), true);
        h.clear();
        assert!(h.drain_order().is_empty());
    }

    #[test]
    fn restore_dirty_fills_llc() {
        let mut h = tiny();
        assert!(h.restore_dirty(0, blk(7)).is_none());
        assert!(h.llc().is_dirty(0));
        assert_eq!(h.drain_order(), vec![(0, blk(7))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_index() {
        let mut h = tiny();
        let _ = h.level_mut(3);
    }

    #[test]
    fn llc_dirty_eviction_surfaces() {
        let mut h = tiny();
        // Force enough writes mapping to one LLC set to overflow the
        // whole hierarchy path. LLC: 8 sets x 2 ways => stride 512.
        let mut spills = 0;
        for i in 0..32u64 {
            if h.write(i * 512, blk(i as u8)).is_some() {
                spills += 1;
            }
        }
        assert!(spills > 0, "expected dirty LLC evictions");
    }
}

#[cfg(test)]
mod fill_tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig {
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l2_bytes: 8 * 64,
            l2_ways: 2,
            llc_bytes: 16 * 64,
            llc_ways: 2,
        })
    }

    #[test]
    fn fill_installs_clean_in_l1() {
        let mut h = tiny();
        assert!(h.fill(0, [4; 64]).is_none());
        assert!(h.l1().contains(0));
        assert!(!h.l1().is_dirty(0));
        assert!(h.drain_order().is_empty(), "clean fills are not drained");
    }

    #[test]
    fn fill_spills_preserve_dirtiness() {
        let mut h = tiny();
        // Dirty write, then enough clean fills in the same L1 set to push
        // it down: its dirty bit must survive the journey.
        h.write(0, [9; 64]);
        for i in 1..=8u64 {
            h.fill(i * 128, [0; 64]); // L1 set 0 (2 sets, stride 128)
        }
        assert!(!h.l1().is_dirty(0) || h.l1().contains(0));
        let drained = h.drain_order();
        assert_eq!(
            drained,
            vec![(0, [9; 64])],
            "the dirty line is still drainable"
        );
    }

    #[test]
    fn fill_returns_dirty_llc_victims_only() {
        let mut h = tiny();
        let mut victims = 0;
        // Alternate dirty writes and clean fills on one conflict chain.
        for i in 0..64u64 {
            let addr = i * 1024; // LLC set-conflicting stride (8 sets)
            if i % 2 == 0 {
                if h.write(addr, [1; 64]).is_some() {
                    victims += 1;
                }
            } else if let Some(v) = h.fill(addr, [2; 64]) {
                assert!(v.dirty, "fill must only surface dirty victims");
                victims += 1;
            }
        }
        assert!(victims > 0, "conflict chain must overflow the hierarchy");
    }
}
