//! A generic set-associative, write-back cache with LRU replacement.

use crate::{is_block_aligned, Block, BLOCK_SHIFT, BLOCK_SIZE};
use serde::{Deserialize, Serialize};

/// Victim-selection policy for a set-associative cache.
///
/// The metadata caches' replacement behaviour directly shapes the
/// baseline drain cost (every victim may trigger a write-back plus a
/// lazy tree update), so the policy is an ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (the default).
    #[default]
    Lru,
    /// Evict the oldest-inserted line, ignoring reuse.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift stream seeded
    /// by the given value).
    Random(u64),
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplacementPolicy::Lru => write!(f, "LRU"),
            ReplacementPolicy::Fifo => write!(f, "FIFO"),
            ReplacementPolicy::Random(seed) => write!(f, "random({seed})"),
        }
    }
}

/// Static geometry of a cache: total size, associativity, and name.
///
/// ```
/// use horus_cache::CacheGeometry;
/// let g = CacheGeometry::new("LLC", 16 * 1024 * 1024, 16);
/// assert_eq!(g.num_lines(), 262_144);
/// assert_eq!(g.num_sets(), 16_384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    name: &'static str,
    size_bytes: u64,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the size is not a multiple of the block size, if
    /// `ways` is zero or does not divide the line count, or if the
    /// resulting set count is not a power of two (required for index
    /// extraction).
    #[must_use]
    pub fn new(name: &'static str, size_bytes: u64, ways: usize) -> Self {
        assert!(
            size_bytes > 0 && size_bytes % BLOCK_SIZE as u64 == 0,
            "size must be a positive multiple of {BLOCK_SIZE}"
        );
        assert!(ways > 0, "associativity must be positive");
        let lines = size_bytes / BLOCK_SIZE as u64;
        assert!(lines % ways as u64 == 0, "ways must divide the line count");
        let sets = lines / ways as u64;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        Self {
            name,
            size_bytes,
            ways,
        }
    }

    /// The cache's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (lines per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total number of 64-byte lines.
    #[must_use]
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / BLOCK_SIZE as u64
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.num_lines() / self.ways as u64
    }

    /// The set an address maps to.
    #[must_use]
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr >> BLOCK_SHIFT) & (self.num_sets() - 1)
    }
}

/// A line evicted from a cache (or popped during a drain walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The block-aligned address the line held.
    pub addr: u64,
    /// The line's data.
    pub data: Block,
    /// Whether the line was dirty (needs writing back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    addr: u64,
    data: Block,
    dirty: bool,
    last_use: u64,
    inserted: u64,
}

/// A set-associative write-back cache of 64-byte blocks with LRU
/// replacement.
///
/// Addresses must be block-aligned. The cache is functional (it stores
/// real bytes); hit/miss statistics accumulate until
/// [`reset_stats`](Self::reset_stats).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Line>>,
    tick: u64,
    rng: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty LRU cache with the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_policy(geom, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    #[must_use]
    pub fn with_policy(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sets = (0..geom.num_sets())
            .map(|_| Vec::with_capacity(geom.ways()))
            .collect();
        let rng = match policy {
            ReplacementPolicy::Random(seed) => seed | 1,
            _ => 1,
        };
        Self {
            geom,
            policy,
            sets,
            tick: 0,
            rng,
            hits: 0,
            misses: 0,
        }
    }

    /// The replacement policy in force.
    #[must_use]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn victim_index(&mut self, set: usize) -> usize {
        let lines = &self.sets[set];
        match self.policy {
            ReplacementPolicy::Lru => {
                lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .expect("non-empty")
                    .0
            }
            ReplacementPolicy::Fifo => {
                lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.inserted)
                    .expect("non-empty")
                    .0
            }
            ReplacementPolicy::Random(_) => {
                // xorshift64*
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % lines.len() as u64) as usize
            }
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Total line capacity.
    #[must_use]
    pub fn capacity_lines(&self) -> u64 {
        self.geom.num_lines()
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Lookup hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears hit/miss statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    fn assert_aligned(addr: u64) {
        assert!(
            is_block_aligned(addr),
            "address {addr:#x} is not block-aligned"
        );
    }

    fn set_index(&self, addr: u64) -> usize {
        self.geom.set_of(addr) as usize
    }

    /// Looks up `addr`, counting a hit or miss and refreshing LRU state.
    pub fn lookup(&mut self, addr: u64) -> Option<&Block> {
        Self::assert_aligned(addr);
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        match self.sets[set].iter().position(|l| l.addr == addr) {
            Some(idx) => {
                self.hits += 1;
                let line = &mut self.sets[set][idx];
                line.last_use = tick;
                Some(&self.sets[set][idx].data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads `addr` without touching statistics or LRU state.
    #[must_use]
    pub fn peek(&self, addr: u64) -> Option<&Block> {
        Self::assert_aligned(addr);
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| &l.data)
    }

    /// Whether the line at `addr` is present and dirty.
    #[must_use]
    pub fn is_dirty(&self, addr: u64) -> bool {
        Self::assert_aligned(addr);
        let set = self.set_index(addr);
        self.sets[set].iter().any(|l| l.addr == addr && l.dirty)
    }

    /// Whether `addr` is cached (no statistics recorded).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts (or overwrites) the line at `addr`, returning the evicted
    /// victim if the set was full.
    ///
    /// On overwrite the dirty bit accumulates (`dirty |= new`), matching
    /// write-back semantics where a clean fill over a dirty line cannot
    /// lose the pending write-back.
    pub fn insert(&mut self, addr: u64, data: Block, dirty: bool) -> Option<EvictedLine> {
        Self::assert_aligned(addr);
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let ways = self.geom.ways();
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.addr == addr) {
            line.data = data;
            line.dirty |= dirty;
            line.last_use = tick;
            return None;
        }
        let victim = if lines.len() == ways {
            let idx = self.victim_index(set);
            let v = self.sets[set].swap_remove(idx);
            Some(EvictedLine {
                addr: v.addr,
                data: v.data,
                dirty: v.dirty,
            })
        } else {
            None
        };
        self.sets[set].push(Line {
            addr,
            data,
            dirty,
            last_use: tick,
            inserted: tick,
        });
        victim
    }

    /// Writes `data` to the line at `addr` if present, marking it dirty.
    /// Returns whether the line was present.
    pub fn write_hit(&mut self, addr: u64, data: Block) -> bool {
        Self::assert_aligned(addr);
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            line.data = data;
            line.dirty = true;
            line.last_use = tick;
            true
        } else {
            false
        }
    }

    /// Clears the dirty bit of the line at `addr` (it has been written
    /// back). Returns whether the line was present.
    pub fn mark_clean(&mut self, addr: u64) -> bool {
        Self::assert_aligned(addr);
        let set = self.set_index(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            line.dirty = false;
            true
        } else {
            false
        }
    }

    /// Removes the line at `addr`, returning it if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<EvictedLine> {
        Self::assert_aligned(addr);
        let set = self.set_index(addr);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.addr == addr)?;
        let v = lines.swap_remove(idx);
        Some(EvictedLine {
            addr: v.addr,
            data: v.data,
            dirty: v.dirty,
        })
    }

    /// Iterates every valid line in set order (the order a hardware drain
    /// walk visits the arrays), as `(addr, &data, dirty)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Block, bool)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.addr, &l.data, l.dirty)))
    }

    /// Iterates only the dirty lines, in set order.
    pub fn dirty_lines(&self) -> impl Iterator<Item = (u64, &Block)> {
        self.iter().filter(|(_, _, d)| *d).map(|(a, b, _)| (a, b))
    }

    /// Number of dirty lines.
    #[must_use]
    pub fn dirty_count(&self) -> u64 {
        self.iter().filter(|(_, _, d)| *d).count() as u64
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new("t", 8 * 64, 2))
    }

    fn blk(v: u8) -> Block {
        [v; BLOCK_SIZE]
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new("L2", 2 * 1024 * 1024, 8);
        assert_eq!(g.num_lines(), 32_768);
        assert_eq!(g.num_sets(), 4_096);
        assert_eq!(g.ways(), 8);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(64), 1);
        assert_eq!(g.set_of(64 * 4096), 0);
        assert_eq!(g.name(), "L2");
        assert_eq!(g.size_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheGeometry::new("bad", 3 * 64, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ways_rejected() {
        let _ = CacheGeometry::new("bad", 64, 0);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = small();
        assert_eq!(c.lookup(0), None);
        c.insert(0, blk(1), false);
        assert_eq!(c.lookup(0), Some(&blk(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_rejected() {
        let mut c = small();
        let _ = c.lookup(1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 gets addresses 0 and 4*64*... (4 sets => stride 256).
        c.insert(0, blk(1), true);
        c.insert(256, blk(2), false);
        // Touch the first line so 256 becomes LRU.
        let _ = c.lookup(0);
        let evicted = c.insert(512, blk(3), false).expect("set full");
        assert_eq!(evicted.addr, 256);
        assert!(!evicted.dirty);
        assert!(c.contains(0) && c.contains(512));
    }

    #[test]
    fn dirty_eviction_carries_data() {
        let mut c = small();
        c.insert(0, blk(9), true);
        c.insert(256, blk(2), false);
        let _ = c.lookup(256);
        // 0 is now LRU and dirty.
        let evicted = c.insert(512, blk(3), false).expect("set full");
        assert_eq!(
            evicted,
            EvictedLine {
                addr: 0,
                data: blk(9),
                dirty: true
            }
        );
    }

    #[test]
    fn overwrite_accumulates_dirty() {
        let mut c = small();
        c.insert(0, blk(1), true);
        assert!(c.insert(0, blk(2), false).is_none());
        assert!(c.is_dirty(0));
        assert_eq!(c.peek(0), Some(&blk(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn write_hit_and_mark_clean() {
        let mut c = small();
        assert!(!c.write_hit(0, blk(5)));
        c.insert(0, blk(1), false);
        assert!(c.write_hit(0, blk(5)));
        assert!(c.is_dirty(0));
        assert!(c.mark_clean(0));
        assert!(!c.is_dirty(0));
        assert!(!c.mark_clean(64));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(0, blk(1), true);
        let line = c.invalidate(0).expect("present");
        assert!(line.dirty);
        assert!(!c.contains(0));
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn iteration_and_dirty_count() {
        let mut c = small();
        c.insert(0, blk(1), true);
        c.insert(64, blk(2), false);
        c.insert(128, blk(3), true);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dirty_count(), 2);
        let dirty: Vec<u64> = c.dirty_lines().map(|(a, _)| a).collect();
        assert_eq!(dirty, vec![0, 128]);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut c = small();
        for i in 0..8u64 {
            assert!(c.insert(i * 64, blk(i as u8), true).is_none(), "line {i}");
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.dirty_count(), 8);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = small();
        c.insert(0, blk(1), false);
        let _ = c.peek(0);
        let _ = c.peek(64);
        assert_eq!(c.hits() + c.misses(), 0);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn blk(v: u8) -> Block {
        [v; BLOCK_SIZE]
    }

    // One set (2 ways) caches so victim choice is easy to observe.
    fn cache(policy: ReplacementPolicy) -> SetAssocCache {
        SetAssocCache::with_policy(CacheGeometry::new("t", 2 * 64, 2), policy)
    }

    #[test]
    fn fifo_ignores_reuse() {
        let mut c = cache(ReplacementPolicy::Fifo);
        c.insert(0, blk(1), false);
        c.insert(64, blk(2), false);
        // Touch the oldest line: LRU would now spare it, FIFO must not.
        let _ = c.lookup(0);
        let victim = c.insert(64 * 2, blk(3), false).expect("set full");
        assert_eq!(victim.addr, 0, "FIFO evicts the oldest insertion");
    }

    #[test]
    fn lru_respects_reuse() {
        let mut c = cache(ReplacementPolicy::Lru);
        c.insert(0, blk(1), false);
        c.insert(64, blk(2), false);
        let _ = c.lookup(0);
        let victim = c.insert(128, blk(3), false).expect("set full");
        assert_eq!(victim.addr, 64, "LRU spares the reused line");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = cache(ReplacementPolicy::Random(seed));
            let mut victims = Vec::new();
            for i in 0..20u64 {
                if let Some(v) = c.insert(i * 64, blk(i as u8), false) {
                    victims.push(v.addr);
                }
            }
            victims
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn policy_accessors_and_display() {
        assert_eq!(
            cache(ReplacementPolicy::Fifo).policy(),
            ReplacementPolicy::Fifo
        );
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Random(3).to_string(), "random(3)");
    }

    #[test]
    fn overwrite_never_consults_policy() {
        // Overwriting a present line must not evict under any policy.
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(1),
        ] {
            let mut c = cache(policy);
            c.insert(0, blk(1), false);
            c.insert(64, blk(2), false);
            assert!(c.insert(0, blk(9), true).is_none(), "{policy}");
            assert_eq!(c.len(), 2);
        }
    }
}
