//! Offline stand-in for `criterion`.
//!
//! Lets the workspace's `[[bench]]` targets compile (and nominally run:
//! each `iter` body executes once, no statistics) without the registry.
//! CI's bench jobs use the real crate; this stub only keeps offline
//! `cargo check --benches` and ad-hoc smoke runs working.

use std::fmt;
use std::time::Duration;

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let _ = id;
        f(&mut Bencher {});
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let _ = name.into();
        BenchmarkGroup { _criterion: self }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let _ = id;
        f(&mut Bencher {});
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let _ = id;
        f(&mut Bencher {}, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_with_setup<S, O, SF, F>(&mut self, mut setup: SF, mut f: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        black_box(f(setup()));
    }
}

pub struct BenchmarkId {
    _id: String,
}

impl BenchmarkId {
    #[must_use]
    pub fn new(group: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { _id: format!("{group}/{parameter}") }
    }

    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { _id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self._id.fmt(f)
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
