//! Offline stand-in for `serde_json`.
//!
//! Renders and parses real JSON text over the stub `serde` value model
//! ([`serde::Content`]). Output formatting matches real `serde_json`
//! closely enough for the workspace's byte-identity tests: compact
//! `{"k":v}` with no spaces, pretty with two-space indents, floats
//! printed with a decimal point (`1.0`, not `1`), map/struct fields in
//! declaration order.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

pub struct Error {
    msg: String,
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error { msg: msg.into() })
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the stub's value model; the `Result` mirrors the real
/// API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
/// Infallible for the stub's value model; the `Result` mirrors the real
/// API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any stub-deserializable type.
///
/// # Errors
/// Returns a descriptive error on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let content = parse(text)?;
    T::from_content(&content).map_err(|msg| Error { msg })
}

// ---------------------------------------------------------------- writing

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::U128(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, out: &mut String, depth: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Floats always carry a decimal point or exponent, as with real
/// serde_json; non-finite values render as `null` (real serde_json
/// rejects them — nothing in the workspace serializes them).
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Content> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return err("unterminated string");
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return err("unpaired surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return err("invalid unicode escape"),
                            }
                        }
                        other => {
                            return err(format!("invalid escape `\\{}`", char::from(other)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let text = std::str::from_utf8(rest).map_err(|_| Error {
                        msg: "invalid utf-8".to_string(),
                    })?;
                    let ch = text.chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return err("unescaped control character in string");
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return err("truncated unicode escape");
        };
        let hex = std::str::from_utf8(hex).map_err(|_| Error {
            msg: "invalid unicode escape".to_string(),
        })?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
            msg: format!("invalid unicode escape `\\u{hex}`"),
        })?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error {
            msg: "invalid number".to_string(),
        })?;
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error { msg: format!("invalid number `{text}`") })
        } else if let Some(body) = text.strip_prefix('-') {
            // Reject bare `-`.
            if body.is_empty() {
                return err("invalid number `-`");
            }
            text.parse::<i64>()
                .map(Content::I64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| Error { msg: format!("invalid number `{text}`") })
        } else if text.is_empty() {
            err("invalid number")
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<u128>().map(Content::U128))
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| Error { msg: format!("invalid number `{text}`") })
        }
    }
}
