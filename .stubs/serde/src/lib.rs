//! Offline stand-in for `serde`.
//!
//! The workspace's registry mirror is unreachable from this container, so
//! `serde`/`serde_json` are replaced by small functional equivalents: a
//! value model ([`Content`]) plus [`Serialize`]/[`Deserialize`] traits
//! that convert to and from it. The derive macros (`.stubs/serde_derive`)
//! target these traits, and `.stubs/serde_json` renders/parses `Content`
//! as real JSON, so everything that round-trips through `serde_json` in
//! the workspace behaves the same as with the real crates (modulo exotic
//! serde features nothing here uses).
//!
//! Representation choices mirror real serde defaults for the shapes the
//! workspace derives: structs → JSON objects in declaration order, unit
//! enum variants → strings, struct variants → `{"Variant": {...}}`
//! single-key objects, `Option` → value-or-null with missing-field
//! tolerance, maps → objects, sequences/tuples → arrays.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// The in-memory data model every stub (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    U128(u128),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered so struct fields render in declaration order,
    /// exactly like real serde's streaming serializer.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable kind, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::U128(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Looks up a field in an insertion-ordered object.
#[must_use]
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Missing-field hook used by derived `Deserialize` impls; dispatches to
/// [`Deserialize::from_missing`] so `Option` fields default to `None`.
pub fn missing_field<T: Deserialize>(field: &str) -> Result<T, String> {
    T::from_missing(field)
}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, String>;

    /// Called when a field is absent from the input object. Errors by
    /// default; `Option` overrides it to produce `None`.
    fn from_missing(field: &str) -> Result<Self, String> {
        Err(format!("missing field `{field}`"))
    }
}

/// Mirror of real serde's `serde::de` module, just deep enough that
/// `serde::de::DeserializeOwned` bounds compile against the stub. The
/// stub's [`Deserialize`] has no lifetime, so "owned" is the only mode.
pub mod de {
    pub use super::Deserialize as DeserializeOwned;
}

// ------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = as_u64(c)?;
                <$t>::try_from(v).map_err(|_| {
                    format!("{v} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, String> {
        let v = as_u64(c)?;
        usize::try_from(v).map_err(|_| format!("{v} out of range for usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = as_i64(c)?;
                <$t>::try_from(v).map_err(|_| {
                    format!("{v} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, String> {
        let v = as_i64(c)?;
        isize::try_from(v).map_err(|_| format!("{v} out of range for isize"))
    }
}

fn as_u64(c: &Content) -> Result<u64, String> {
    match c {
        Content::U64(v) => Ok(*v),
        Content::U128(v) => u64::try_from(*v).map_err(|_| format!("{v} out of range for u64")),
        Content::I64(v) if *v >= 0 => Ok(*v as u64),
        _ => Err(format!("expected unsigned integer, found {}", c.type_name())),
    }
}

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        Content::U128(*self)
    }
}
impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::U128(v) => Ok(*v),
            Content::U64(v) => Ok(u128::from(*v)),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            _ => Err(format!("expected unsigned integer, found {}", c.type_name())),
        }
    }
}

fn as_i64(c: &Content) -> Result<i64, String> {
    match c {
        Content::I64(v) => Ok(*v),
        Content::U64(v) => i64::try_from(*v).map_err(|_| format!("{v} out of range for i64")),
        _ => Err(format!("expected integer, found {}", c.type_name())),
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(format!("expected number, found {}", c.type_name())),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, String> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, found {}", c.type_name())),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(format!("expected string, found {}", c.type_name())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

/// Real serde derives `Deserialize` for `&'static str` fields and defers
/// the lifetime problem to the input; the stub leaks the parsed string,
/// which is fine for the rare, small, test-only uses in this workspace.
impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, String> {
        String::from_content(c).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(format!("expected array, found {}", c.type_name())),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, String> {
        let items = Vec::<T>::from_content(c)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, found {len}"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(format!("expected object, found {}", c.type_name())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                let arity = [$($idx),+].len();
                match c {
                    Content::Seq(items) if items.len() == arity => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    Content::Seq(items) => Err(format!(
                        "expected {arity}-tuple, found array of {}", items.len()
                    )),
                    _ => Err(format!("expected array, found {}", c.type_name())),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
