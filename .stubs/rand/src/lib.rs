//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the API the workspace uses — `StdRng` +
//! `SeedableRng::seed_from_u64` + `Rng::{gen, gen_range, gen_bool}` —
//! with a real ChaCha12 core and the rand_core SplitMix64 seeding
//! scheme. The stream is deterministic for a given seed (everything the
//! workspace's reproducibility contract needs) but is **not** guaranteed
//! to be bit-identical to the real `rand` crate's `StdRng`, so absolute
//! simulated magnitudes from seeded workloads can differ between stub
//! and registry builds; within one build every run agrees.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{distributions::Distribution, Rng, RngCore, SeedableRng};
}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// SplitMix64 expansion of a `u64` into the full seed, 4 bytes per
    /// output word — the rand_core 0.6 scheme.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform f64 in [0, 1) from the high 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`]. Generic over one
/// [`SampleUniform`] bound (like the real crate) so integer-literal
/// inference flows from the use site, not from impl selection.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _incl: bool) -> f64 {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

pub mod distributions {
    use crate::{unit_f64, RngCore};

    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_standard_small {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u32() as $t
                }
            }
        )*};
    }
    impl_standard_small!(u8, u16, u32, i8, i16, i32);

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }
}

mod std_rng {
    use crate::{RngCore, SeedableRng};

    /// ChaCha12-core RNG (the algorithm behind rand 0.8's `StdRng`).
    #[derive(Clone)]
    pub struct StdRng {
        state: [u32; 16],
        buf: [u32; 16],
        next: usize,
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865; // "expa"
            state[1] = 0x3320_646e; // "nd 3"
            state[2] = 0x7962_2d32; // "2-by"
            state[3] = 0x6b20_6574; // "te k"
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            // Words 12/13: 64-bit block counter; 14/15: stream id (zero).
            StdRng { state, buf: [0; 16], next: 16 }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.next == 16 {
                self.refill();
            }
            let word = self.buf[self.next];
            self.next += 1;
            word
        }

        fn next_u64(&mut self) -> u64 {
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let n = chunk.len();
                chunk.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
            }
        }
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut working = self.state;
            for _ in 0..6 {
                // Column round.
                quarter(&mut working, 0, 4, 8, 12);
                quarter(&mut working, 1, 5, 9, 13);
                quarter(&mut working, 2, 6, 10, 14);
                quarter(&mut working, 3, 7, 11, 15);
                // Diagonal round.
                quarter(&mut working, 0, 5, 10, 15);
                quarter(&mut working, 1, 6, 11, 12);
                quarter(&mut working, 2, 7, 8, 13);
                quarter(&mut working, 3, 4, 9, 14);
            }
            for (out, (w, s)) in
                self.buf.iter_mut().zip(working.iter().zip(self.state.iter()))
            {
                *out = w.wrapping_add(*s);
            }
            // Advance the 64-bit block counter.
            let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12]))
                .wrapping_add(1);
            self.state[12] = counter as u32;
            self.state[13] = (counter >> 32) as u32;
            self.next = 0;
        }
    }

    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_stay_in_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let v = rng.gen_range(10u64..20);
                assert!((10..20).contains(&v));
                let w = rng.gen_range(0..8u8);
                assert!(w < 8);
                let s = rng.gen_range(-5i64..=5);
                assert!((-5..=5).contains(&s));
            }
        }
    }
}
