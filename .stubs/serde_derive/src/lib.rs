//! Offline stand-in for `serde_derive`.
//!
//! Derives the *stub* `serde::Serialize` / `serde::Deserialize` traits
//! (see `.stubs/serde`) for the shapes this workspace actually uses:
//!
//! * non-generic structs with named fields,
//! * non-generic enums whose variants are unit or struct-like,
//! * the serde attributes `skip_serializing_if = "path"`, `default`,
//!   and the container-level `into = "T"` / `from = "T"`.
//!
//! No `syn`/`quote`: the input token stream is walked directly (only
//! field/variant *names* and `#[serde(...)]` attributes matter — types
//! are skipped), and the impl is emitted as a formatted string. Anything
//! outside the supported grammar becomes a `compile_error!` so misuse is
//! loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct SerdeAttrs {
    skip_if: Option<String>,
    default: bool,
    into: Option<String>,
    from: Option<String>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Single-field tuple variant, serialized as `{"Variant": value}`.
    Newtype,
    Struct(Vec<Field>),
}

enum Shape {
    Struct(Vec<Field>),
    /// Tuple struct with this many fields; arity 1 (newtype) serializes
    /// transparently as the inner value, like real serde.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(input) => gen_serialize(&input).parse().expect("generated Serialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(input) => gen_deserialize(&input).parse().expect("generated Deserialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().expect("compile_error parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = collect_attrs(&toks, &mut i)?;
    skip_visibility(&toks, &mut i);
    let kind = expect_ident(&toks, &mut i, "`struct` or `enum`")?;
    let name = expect_ident(&toks, &mut i, "type name")?;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stub derive: generic type `{name}` is unsupported"));
    }
    let shape = match (kind.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(parse_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        _ => {
            return Err(format!(
                "serde stub derive: `{name}` must be a braced struct/enum or tuple struct"
            ))
        }
    };
    Ok(Input { name, attrs, shape })
}

/// Consumes leading `#[...]` attributes, folding `#[serde(...)]` contents
/// into one `SerdeAttrs`.
fn collect_attrs(toks: &[TokenTree], i: &mut usize) -> Result<SerdeAttrs, String> {
    let mut out = SerdeAttrs::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let group = match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("serde stub derive: malformed attribute".to_string()),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if is_serde {
            match inner.get(1) {
                Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                    parse_serde_args(args.stream(), &mut out)?;
                }
                _ => return Err("serde stub derive: expected #[serde(...)]".to_string()),
            }
        }
        *i += 1;
    }
    Ok(out)
}

/// Parses `key = "value"` / bare-`key` pairs inside `#[serde(...)]`.
fn parse_serde_args(stream: TokenStream, out: &mut SerdeAttrs) -> Result<(), String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = expect_ident(&toks, &mut i, "serde attribute key")?;
        let has_value = matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if has_value {
            i += 1;
            match toks.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    i += 1;
                    Some(unquote(&lit.to_string())?)
                }
                _ => return Err(format!("serde stub derive: `{key} =` needs a string literal")),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("skip_serializing_if", Some(path)) => out.skip_if = Some(path),
            ("into", Some(path)) => out.into = Some(path),
            ("from", Some(path)) => out.from = Some(path),
            ("default", None) => out.default = true,
            (other, _) => {
                return Err(format!("serde stub derive: unsupported serde attribute `{other}`"))
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(())
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = collect_attrs(&toks, &mut i)?;
        skip_visibility(&toks, &mut i);
        let name = expect_ident(&toks, &mut i, "field name")?;
        expect_punct(&toks, &mut i, ':')?;
        // Skip the type: everything up to the next comma outside angle
        // brackets. (No fn-pointer or const-generic types appear in the
        // workspace's serde-derived shapes.)
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = collect_attrs(&toks, &mut i)?;
        let name = expect_ident(&toks, &mut i, "variant name")?;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde stub derive: multi-field tuple variant `{name}` is unsupported"
                    ));
                }
                i += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Counts the fields of a tuple struct: top-level commas delimit, a
/// trailing comma doesn't add a field.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0;
    let mut pending = false;
    let mut angle = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    fields + usize::from(pending)
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // pub(crate) / pub(super) / ...
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> Result<String, String> {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde stub derive: expected {what}, found {other:?}")),
    }
}

fn expect_punct(toks: &[TokenTree], i: &mut usize, ch: char) -> Result<(), String> {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ch => {
            *i += 1;
            Ok(())
        }
        other => Err(format!("serde stub derive: expected `{ch}`, found {other:?}")),
    }
}

/// Strips the surrounding quotes from a string-literal token.
fn unquote(lit: &str) -> Result<String, String> {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("serde stub derive: expected string literal, found {lit}"))?;
    Ok(inner.to_string())
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(into) = &input.attrs.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
             let repr__: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&repr__)\n\
             }}\n}}\n"
        );
    }
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let pushes = fields
                .iter()
                .map(|f| push_field(f, &format!("&self.{}", f.name)))
                .collect::<String>();
            format!(
                "let mut fields__: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(fields__)\n"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)\n".to_string(),
        Shape::Tuple(arity) => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_content(&self.{idx})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(::std::vec![{items}])\n")
        }
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from({vname:?})),\n"
                        ),
                        VariantShape::Newtype => format!(
                            "{name}::{vname}(inner__) => \
                             ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_content(inner__))]),\n"
                        ),
                        VariantShape::Struct(fields) => {
                            let bindings = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes = fields
                                .iter()
                                .map(|f| push_field(f, &f.name))
                                .collect::<String>();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                 let mut fields__: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Content)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Content::Map(fields__))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect::<String>();
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

/// One `fields__.push(...)` statement, honoring `skip_serializing_if`.
fn push_field(f: &Field, expr: &str) -> String {
    let fname = &f.name;
    let push = format!(
        "fields__.push((::std::string::String::from({fname:?}), \
         ::serde::Serialize::to_content({expr})));\n"
    );
    match &f.attrs.skip_if {
        Some(path) => format!("if !{path}({expr}) {{\n{push}}}\n"),
        None => push,
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(from) = &input.attrs.from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c__: &::serde::Content) -> \
             ::std::result::Result<Self, ::std::string::String> {{\n\
             let repr__: {from} = ::serde::Deserialize::from_content(c__)?;\n\
             ::std::result::Result::Ok(::core::convert::Into::into(repr__))\n\
             }}\n}}\n"
        );
    }
    let body = match &input.shape {
        Shape::Struct(fields) => format!(
            "let fields__ = match c__ {{\n\
             ::serde::Content::Map(m__) => m__,\n\
             _ => return ::std::result::Result::Err(::std::format!(\
             \"{name}: expected object, found {{}}\", c__.type_name())),\n\
             }};\n\
             ::std::result::Result::Ok({name} {{\n{}}})\n",
            fields.iter().map(|f| field_init(f)).collect::<String>()
        ),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c__)?))\n")
        }
        Shape::Tuple(arity) => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Deserialize::from_content(&items__[{idx}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items__ = match c__ {{\n\
                 ::serde::Content::Seq(s__) if s__.len() == {arity} => s__,\n\
                 _ => return ::std::result::Result::Err(::std::format!(\
                 \"{name}: expected {arity}-element array, found {{}}\", c__.type_name())),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({items}))\n"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n")
                })
                .collect::<String>();
            let map_arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ),
                        VariantShape::Newtype => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(v__)?)),\n"
                        ),
                        VariantShape::Struct(fields) => format!(
                            "{vname:?} => {{\n\
                             let fields__ = match v__ {{\n\
                             ::serde::Content::Map(m__) => m__,\n\
                             _ => return ::std::result::Result::Err(::std::format!(\
                             \"{name}::{vname}: expected object, found {{}}\", \
                             v__.type_name())),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{}}})\n\
                             }}\n",
                            fields.iter().map(|f| field_init(f)).collect::<String>()
                        ),
                    }
                })
                .collect::<String>();
            format!(
                "match c__ {{\n\
                 ::serde::Content::Str(s__) => match s__.as_str() {{\n\
                 {unit_arms}\
                 other__ => ::std::result::Result::Err(::std::format!(\
                 \"{name}: unknown variant `{{}}`\", other__)),\n\
                 }},\n\
                 ::serde::Content::Map(m__) if m__.len() == 1 => {{\n\
                 let (k__, v__) = &m__[0];\n\
                 let _ = v__;\n\
                 match k__.as_str() {{\n\
                 {map_arms}\
                 other__ => ::std::result::Result::Err(::std::format!(\
                 \"{name}: unknown variant `{{}}`\", other__)),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::std::format!(\
                 \"{name}: expected variant string or single-key object, found {{}}\", \
                 c__.type_name())),\n\
                 }}\n"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c__: &::serde::Content) -> \
         ::std::result::Result<Self, ::std::string::String> {{\n{body}}}\n}}\n"
    )
}

/// One `field: <value>,` initializer inside a struct literal, honoring
/// `default` and the trait-level missing-field hook (`Option` → `None`).
fn field_init(f: &Field) -> String {
    let fname = &f.name;
    let missing = if f.attrs.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!("::serde::missing_field({fname:?})?")
    };
    format!(
        "{fname}: match ::serde::content_get(fields__, {fname:?}) {{\n\
         ::std::option::Option::Some(v__) => ::serde::Deserialize::from_content(v__)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n"
    )
}
