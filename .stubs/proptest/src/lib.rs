//! Offline stand-in for `proptest`.
//!
//! A deterministic mini engine covering the strategy/macro surface the
//! workspace's property tests use: integer-range strategies, `any`,
//! `prop_map`, tuple strategies, `prop::array::uniform{16,32}`,
//! `prop::collection::{vec, btree_map}`, `prop::sample::{Index, select}`,
//! and the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic seeding** — the RNG is seeded from the test-function
//!   name, so runs are reproducible; there is no persistence file.
//! * `PROPTEST_CASES` scales the default case count (explicit
//!   `with_cases` wins), matching how the real crate's env override
//!   interacts with explicit configs.

pub mod test_runner {
    /// SplitMix64 — plenty for input generation.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        #[must_use]
        pub fn deterministic_for(name: &str) -> TestRunner {
            // FNV-1a over the test name gives each test its own stream.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { state: hash }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: empty bound");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    pub enum TestCaseError {
        /// `prop_assume!` rejection — the case is skipped, not failed.
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        #[must_use]
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Explicit case count; ignores `PROPTEST_CASES`, like the real crate.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;

    pub trait Strategy {
        type Value;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + runner.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy range is empty");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let pick = ((u128::from(runner.next_u64()) * span) >> 64) as i128;
                    (start as i128 + pick) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use core::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait ArbitraryValue {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    pub struct UniformArray<S, const N: usize>(S);

    #[must_use]
    pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
        UniformArray(element)
    }

    #[must_use]
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray(element)
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, runner: &mut TestRunner) -> [S::Value; N] {
            core::array::from_fn(|_| self.0.generate(runner))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::collections::BTreeMap;

    /// Size specification accepted by the collection strategies.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            let span = (self.max_exclusive - self.min) as u64;
            self.min + runner.below(span.max(1)) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.pick(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, runner: &mut TestRunner) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(runner);
            let mut map = BTreeMap::new();
            // Duplicate keys collapse; bound the attempts so tight key
            // spaces cannot loop forever.
            for _ in 0..target.saturating_mul(8) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(runner), self.value.generate(runner));
            }
            map
        }
    }
}

pub mod sample {
    use crate::arbitrary::ArbitraryValue;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A length-agnostic index, resolved against a collection at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl ArbitraryValue for Index {
        fn arbitrary(runner: &mut TestRunner) -> Index {
            Index(runner.next_u64() as usize)
        }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            self.options[runner.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::{array, collection, sample};
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::deterministic_for(stringify!($name));
            for case__ in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                #[allow(unused_mut)]
                let mut body__ = ||
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match body__() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg__),
                    ) => {
                        panic!(
                            "property `{}` failed at case {} (stub engine, no shrinking): {}",
                            stringify!($name), case__, msg__
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l__, r__) = (&$left, &$right);
        $crate::prop_assert!(
            *l__ == *r__,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l__, r__
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l__, r__) = (&$left, &$right);
        $crate::prop_assert!(
            *l__ == *r__,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), l__, r__
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l__, r__) = (&$left, &$right);
        $crate::prop_assert!(
            *l__ != *r__,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l__
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l__, r__) = (&$left, &$right);
        $crate::prop_assert!(
            *l__ != *r__,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), l__
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
