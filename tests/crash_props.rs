//! Property tests for the crash-point layer (ISSUE 3, satellite 5):
//!
//! 1. **Determinism** — the same truncated persistent state always
//!    yields the same `RecoveryReport` (and the same full crash-point
//!    classification), for any crash cycle and torn-write model.
//! 2. **No lying** — recovery never claims success (`Recovered`) while
//!    any read returns data differing from the pre-drain cache
//!    contents; for Horus the classification is *never*
//!    `SilentCorruption` at any crash cycle.
//!
//! The widest-coverage versions are proptest properties; the plain
//! `#[test]`s below pin the same invariants at hand-picked cycles so
//! the file keeps teeth in minimal environments too.

use horus::core::crash::{run_crash_point, CrashSpec};
use horus::core::{
    CrashVerdict, DrainScheme, RecoveryMode, SecureEpdSystem, SystemConfig, TornWriteModel,
};
use proptest::prelude::*;

const LINES: u64 = 40;

/// The canonical dirty system: `LINES` sparse lines, distinct contents.
fn filled(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
    for i in 0..LINES {
        sys.write(i * 16448, [i as u8 + 1; 64]).expect("write");
    }
    sys
}

/// The uninterrupted episode length for `scheme` over that fill.
fn planned_cycles(scheme: DrainScheme) -> u64 {
    filled(scheme).crash_and_drain(scheme).cycles
}

fn scheme_of(dlm: bool) -> DrainScheme {
    if dlm {
        DrainScheme::HorusDlm
    } else {
        DrainScheme::HorusSlm
    }
}

fn model_of(which: u8) -> TornWriteModel {
    match which % 3 {
        0 => TornWriteModel::Torn,
        1 => TornWriteModel::Stale,
        _ => TornWriteModel::Garbled,
    }
}

/// Runs one full crash-point experiment from a fresh system.
fn point(
    scheme: DrainScheme,
    at: u64,
    model: TornWriteModel,
) -> horus::core::crash::CrashPointReport {
    let mut sys = filled(scheme);
    run_crash_point(
        &mut sys,
        scheme,
        CrashSpec { at, model },
        RecoveryMode::RefillLlc,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same truncated state in, same report out — crash recovery has no
    /// hidden nondeterminism for any cut cycle or torn-write model.
    #[test]
    fn horus_crash_recovery_is_deterministic(
        frac in 0u64..=1000,
        dlm in any::<bool>(),
        which_model in any::<u8>(),
    ) {
        let scheme = scheme_of(dlm);
        let model = model_of(which_model);
        let at = frac * planned_cycles(scheme) / 1000;
        prop_assert_eq!(point(scheme, at, model), point(scheme, at, model));
    }

    /// Recovery never claims success over wrong data, and Horus is
    /// never silently corrupted at any sampled crash cycle.
    #[test]
    fn horus_never_succeeds_with_wrong_data(
        frac in 0u64..=1000,
        dlm in any::<bool>(),
        which_model in any::<u8>(),
    ) {
        let scheme = scheme_of(dlm);
        let report = point(scheme, frac * planned_cycles(scheme) / 1000, model_of(which_model));
        prop_assert_ne!(report.verdict, CrashVerdict::SilentCorruption);
        if report.verdict == CrashVerdict::Recovered {
            prop_assert_eq!(report.reads_matched, LINES);
            prop_assert_eq!(report.reads_stale, 0);
            prop_assert_eq!(report.reads_failed, 0);
        }
    }
}

/// The determinism property, pinned at hand-picked cycles: the exact
/// `CrashRecovery` (including its `RecoveryReport`) must reproduce.
#[test]
fn recovery_report_reproduces_for_identical_truncated_state() {
    for scheme in [DrainScheme::HorusSlm, DrainScheme::HorusDlm] {
        let planned = planned_cycles(scheme);
        for at in [0, 1, planned / 3, planned / 2, 3 * planned / 4, planned - 1] {
            let run = |_| {
                let mut sys = filled(scheme);
                sys.crash_and_drain_interrupted(scheme, CrashSpec::at(at));
                sys.recover_after_crash(RecoveryMode::RefillLlc)
                    .expect("prefix recovery verifies")
            };
            assert_eq!(run(()), run(()), "{scheme:?} at {at}");
        }
    }
}

/// The no-lying property, pinned across every scheme and model at a
/// spread of cycles — including the baselines, where a silent verdict
/// is allowed (their vulnerability window) but a `Recovered` verdict
/// still must mean every read matched.
#[test]
fn recovered_verdict_always_means_exact_data() {
    for scheme in DrainScheme::SECURE {
        let planned = planned_cycles(scheme);
        for model in [
            TornWriteModel::Torn,
            TornWriteModel::Stale,
            TornWriteModel::Garbled,
        ] {
            for at in [0, planned / 2, planned - 1, planned] {
                let report = point(scheme, at, model);
                if report.verdict == CrashVerdict::Recovered {
                    assert_eq!(
                        (
                            report.reads_matched,
                            report.reads_stale,
                            report.reads_failed
                        ),
                        (LINES, 0, 0),
                        "{scheme:?} at {at} ({model})"
                    );
                }
                if scheme.is_horus() {
                    assert_ne!(
                        report.verdict,
                        CrashVerdict::SilentCorruption,
                        "{scheme:?} at {at} ({model})"
                    );
                }
            }
        }
    }
}
