//! Cross-crate integration tests: full crash/drain/recover cycles per
//! scheme, with the workload generators installing the crash state.

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::prelude::*;

fn crashed(scheme: DrainScheme, pattern: FillPattern) -> (SecureEpdSystem, Vec<(u64, [u8; 64])>) {
    let cfg = SystemConfig::small_test();
    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
    let installed = fill_hierarchy(sys.hierarchy_mut(), pattern, cfg.data_bytes, cfg.seed);
    (sys, installed)
}

fn sparse() -> FillPattern {
    FillPattern::StridedSparse {
        min_stride: 16 * 1024,
    }
}

#[test]
fn every_scheme_drains_the_full_worst_case() {
    let expected = SystemConfig::small_test().hierarchy.total_lines();
    for scheme in DrainScheme::ALL {
        let (mut sys, installed) = crashed(scheme, sparse());
        assert_eq!(installed.len() as u64, expected);
        let report = sys.crash_and_drain(scheme);
        assert_eq!(report.flushed_blocks, expected, "{scheme}");
        assert_eq!(report.scheme, scheme.name());
        // The stats breakdown accounts for every write.
        assert_eq!(report.write_breakdown().total(), report.writes, "{scheme}");
        assert_eq!(report.mac_breakdown().total(), report.mac_ops, "{scheme}");
        assert!(report.cycles > 0);
    }
}

#[test]
fn horus_roundtrip_restores_every_line_verbatim() {
    for scheme in [DrainScheme::HorusSlm, DrainScheme::HorusDlm] {
        let (mut sys, installed) = crashed(scheme, sparse());
        sys.crash_and_drain(scheme);
        sys.recover().expect("clean vault");
        for (addr, data) in &installed {
            assert_eq!(
                sys.read(*addr).expect("verifies"),
                *data,
                "{scheme} addr {addr:#x}"
            );
        }
    }
}

#[test]
fn baseline_roundtrip_restores_every_line_verbatim() {
    for scheme in [DrainScheme::BaseLazy, DrainScheme::BaseEager] {
        let (mut sys, installed) = crashed(scheme, sparse());
        sys.crash_and_drain(scheme);
        sys.recover().expect("recovery");
        for (addr, data) in &installed {
            assert_eq!(
                sys.read(*addr).expect("verifies"),
                *data,
                "{scheme} addr {addr:#x}"
            );
        }
    }
}

#[test]
fn eager_drain_leaves_a_root_verifiable_tree() {
    let (mut sys, _) = crashed(DrainScheme::BaseEager, sparse());
    sys.crash_and_drain(DrainScheme::BaseEager);
    // Recompute the root from NVM contents alone: it must match the
    // on-chip register (the whole point of the eager scheme).
    let map = sys.map().clone();
    let engine = sys.metadata();
    let dev = sys.platform().nvm.device();
    let recomputed = engine.bmt().recompute_root(
        map.counter_blocks(),
        |i| {
            let a = map.counter_block_addr(0) + i * 64;
            dev.is_written(a).then(|| dev.read_block(a))
        },
        |l, i| {
            let a = map.bmt_node_addr(l, i);
            dev.is_written(a).then(|| dev.read_block(a))
        },
    );
    assert_eq!(recomputed, engine.root());
}

#[test]
fn horus_is_oblivious_to_crash_content_locality() {
    // The same hierarchy size drained under Horus costs the same number
    // of operations whether the content is sparse, dense, or random —
    // while the baseline degrades with sparsity. (Paper §V-A.)
    let patterns = [
        sparse(),
        FillPattern::DenseSequential { base: 0 },
        FillPattern::UniformRandom { seed: 11 },
    ];
    let mut horus_requests = Vec::new();
    let mut baseline_requests = Vec::new();
    for pattern in patterns {
        let (mut sys, _) = crashed(DrainScheme::HorusSlm, pattern);
        let r = sys.crash_and_drain(DrainScheme::HorusSlm);
        // Metadata-cache content varies slightly; compare the hierarchy
        // stream itself.
        horus_requests.push(r.stats.get("mem.write.chv_data"));
        let (mut sys, _) = crashed(DrainScheme::BaseLazy, pattern);
        let r = sys.crash_and_drain(DrainScheme::BaseLazy);
        baseline_requests.push(r.memory_requests());
    }
    assert!(
        horus_requests.iter().all(|r| *r == horus_requests[0]),
        "Horus must be content-oblivious: {horus_requests:?}"
    );
    let dense = baseline_requests[1];
    let sparse_reqs = baseline_requests[0];
    assert!(
        sparse_reqs > dense * 2,
        "baseline must degrade with sparsity: sparse {sparse_reqs} vs dense {dense}"
    );
}

#[test]
fn drain_reports_are_serializable() {
    let (mut sys, _) = crashed(DrainScheme::HorusDlm, sparse());
    let report = sys.crash_and_drain(DrainScheme::HorusDlm);
    let json = serde_json::to_string(&report).expect("serialize");
    assert!(json.contains("Horus-DLM"));
    let back: horus::core::DrainReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
}

#[test]
fn three_crash_cycles_in_a_row() {
    let cfg = SystemConfig::small_test();
    let mut sys = SecureEpdSystem::new(cfg);
    for round in 0..3u64 {
        for i in 0..32u64 {
            sys.write(i * 16448, [round as u8 + 1; 64]).expect("write");
        }
        let dr = sys.crash_and_drain(DrainScheme::HorusSlm);
        assert!(dr.flushed_blocks >= 32, "round {round}");
        sys.recover().expect("recover");
    }
    for i in 0..32u64 {
        assert_eq!(sys.read(i * 16448).expect("read"), [3u8; 64]);
    }
}

#[test]
fn empty_hierarchy_drains_to_nothing() {
    for scheme in DrainScheme::ALL {
        let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
        let report = sys.crash_and_drain(scheme);
        assert_eq!(report.flushed_blocks, 0, "{scheme}");
        assert_eq!(report.stats.get("mem.write.data"), 0, "{scheme}");
        assert_eq!(report.stats.get("mem.write.chv_data"), 0, "{scheme}");
        // Empty Horus episodes still recover (to nothing).
        if scheme.is_horus() {
            let rec = sys.recover().expect("empty vault verifies");
            assert_eq!(rec.restored_blocks, 0);
        }
    }
}

#[test]
fn recovering_twice_reports_no_episode() {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    sys.write(0, [1; 64]).expect("write");
    sys.crash_and_drain(DrainScheme::HorusSlm);
    sys.recover().expect("first");
    assert_eq!(
        sys.recover().unwrap_err(),
        horus::core::RecoveryError::NoEpisode
    );
}

#[test]
fn dlm_supergroup_boundaries_roundtrip() {
    // 63 / 64 / 65 drained blocks straddle the DLM supergroup boundary
    // (64 entries per MAC block); all must survive exactly.
    for n in [63u64, 64, 65] {
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        // The hierarchy holds 88 lines; install via the workload helper
        // to control the exact count.
        for i in 0..n {
            // The test LLC holds exactly 64 lines at this stride; spill
            // the remainder into L2 so nothing is silently evicted.
            let level = if i < 64 { 2 } else { 1 };
            let evicted =
                sys.hierarchy_mut()
                    .level_mut(level)
                    .insert(i * 16448, [i as u8 + 1; 64], true);
            assert!(evicted.is_none(), "install must not evict (i={i})");
        }
        let dr = sys.crash_and_drain(DrainScheme::HorusDlm);
        assert_eq!(dr.flushed_blocks, n);
        sys.recover().expect("verifies");
        for i in 0..n {
            assert_eq!(
                sys.read(i * 16448).expect("read"),
                [i as u8 + 1; 64],
                "n={n} i={i}"
            );
        }
    }
}

#[test]
fn system_is_send() {
    // Experiment harnesses fan systems out across threads; the whole
    // stack must stay Send (no interior Rc/RefCell creeping in).
    fn assert_send<T: Send>() {}
    assert_send::<SecureEpdSystem>();
    assert_send::<horus::core::DrainReport>();
    assert_send::<horus::metadata::Platform>();
}
