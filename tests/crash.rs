//! End-to-end crash-point fault injection through the public facade:
//! interrupt a drain mid-flight, recover from exactly the persistent
//! state left behind, and check the sweep layer's matrix on top.

use horus::bench::crash_sweep::{self, CrashSweepPlan};
use horus::core::crash::{run_crash_point, CrashSpec};
use horus::core::{
    CrashVerdict, DrainScheme, RecoveryMode, SecureEpdSystem, SystemConfig, TornWriteModel,
};
use horus::harness::Harness;

fn filled(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
    for i in 0..48u64 {
        sys.write(i * 16448, [i as u8 + 1; 64]).expect("write");
    }
    sys
}

#[test]
fn interrupted_horus_drain_salvages_a_verified_prefix() {
    let planned = filled(DrainScheme::HorusSlm)
        .crash_and_drain(DrainScheme::HorusSlm)
        .cycles;
    let mut sys = filled(DrainScheme::HorusSlm);
    let cut =
        sys.crash_and_drain_interrupted(DrainScheme::HorusSlm, CrashSpec::at(3 * planned / 4));
    assert!(!cut.completed);
    assert!(cut.issued_blocks > 0);
    assert!(sys.drain_open(), "persistent drain-open register set");
    let rec = sys
        .recover_after_crash(RecoveryMode::RefillLlc)
        .expect("the verified prefix restores");
    assert!(
        !rec.complete,
        "an interrupted drain is never reported whole"
    );
    assert!(rec.verified_prefix > 0);
    assert!(!sys.drain_open(), "recovery clears the register");
    // Every line the prefix covered reads back exactly.
    let mut matched = 0;
    for i in 0..48u64 {
        if sys.read(i * 16448) == Ok([i as u8 + 1; 64]) {
            matched += 1;
        }
    }
    assert_eq!(matched, rec.verified_prefix.min(48));
}

#[test]
fn torn_write_models_change_the_wreckage_not_the_verdict() {
    let planned = filled(DrainScheme::HorusDlm)
        .crash_and_drain(DrainScheme::HorusDlm)
        .cycles;
    for model in [
        TornWriteModel::Torn,
        TornWriteModel::Stale,
        TornWriteModel::Garbled,
    ] {
        let mut sys = filled(DrainScheme::HorusDlm);
        let report = run_crash_point(
            &mut sys,
            DrainScheme::HorusDlm,
            CrashSpec {
                at: planned / 2,
                model,
            },
            RecoveryMode::RefillLlc,
        );
        // Lines the cut kept out of the vault read back as fresh
        // memory or fail verification — either way the incomplete
        // recovery was *announced*, so the verdict stays Detected (and
        // never silent) no matter how the in-flight writes landed.
        assert_eq!(report.verdict, CrashVerdict::Detected, "{model}");
        assert_eq!(
            report.reads_matched + report.reads_stale + report.reads_failed,
            48,
            "{model}"
        );
    }
}

#[test]
fn quick_matrix_gates_horus_and_reports_baseline_windows() {
    let plan = CrashSweepPlan {
        points_per_scheme: 12,
        ..CrashSweepPlan::quick()
    };
    let matrix = crash_sweep::run(&Harness::with_jobs(2), &plan);
    assert_eq!(matrix.failures(), 0, "{}", matrix.render());
    assert_eq!(matrix.horus_silent_corruptions(), 0);
    assert_eq!(matrix.rows.len(), 4);
    let horus_rows = matrix
        .rows
        .iter()
        .filter(|r| r.scheme.starts_with("Horus"))
        .count();
    assert_eq!(horus_rows, 2);
    for row in &matrix.rows {
        assert_eq!(row.recovered + row.detected + row.silent, row.points);
    }
}
