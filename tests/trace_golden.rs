//! Golden tests for the observability probe: traces are deterministic
//! (byte-identical JSON across runs and worker counts), and leaving the
//! probe off leaves reports exactly as they were before the probe
//! existed.

use horus::core::{DrainScheme, SystemConfig};
use horus::harness::{Harness, JobSpec};
use horus::sim::chrome_trace_json;
use horus::workload::FillPattern;

fn spec(scheme: DrainScheme) -> JobSpec {
    JobSpec::drain(
        &SystemConfig::small_test(),
        scheme,
        FillPattern::StridedSparse { min_stride: 16384 },
    )
}

/// Is this build's serde_json the real implementation? The offline
/// stub renders via `Debug` (`None` instead of `null`) and ignores
/// `skip_serializing_if`; assertions about the real wire shape only
/// run under the real implementation.
fn serde_honors_skip() -> bool {
    serde_json::to_string(&None::<u8>).expect("serialize") == "null"
}

#[test]
fn same_seeded_drain_emits_byte_identical_trace_json() {
    let (_, trace_a) = spec(DrainScheme::HorusSlm).execute_traced();
    let (_, trace_b) = spec(DrainScheme::HorusSlm).execute_traced();
    assert_eq!(trace_a, trace_b, "event streams are deterministic");
    let json_a = chrome_trace_json(&trace_a);
    let json_b = chrome_trace_json(&trace_b);
    assert_eq!(json_a, json_b, "exported JSON is byte-identical");
    assert!(json_a.starts_with("{\"traceEvents\":["));
    assert!(json_a.contains("pcm-bank"));
}

#[test]
fn probed_results_are_identical_across_worker_counts() {
    let specs: Vec<JobSpec> = DrainScheme::ALL.iter().map(|s| spec(*s).probed()).collect();
    let serial = Harness::serial().run(&specs);
    let parallel = Harness::with_jobs(4).run(&specs);
    let a = serial.results().expect("serial sweep succeeds");
    let b = parallel.results().expect("parallel sweep succeeds");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "probed results do not depend on worker count");
    }
    // The probe products actually rode along.
    for r in &a {
        assert!(r.drain.utilization.is_some());
        assert!(r.drain.critical_path.is_some());
    }
}

#[test]
fn unprobed_reports_match_pre_probe_output() {
    for scheme in DrainScheme::ALL {
        let plain = spec(scheme).execute();
        let (probed, trace) = spec(scheme).execute_traced();
        assert!(!trace.is_empty(), "{scheme}");

        // Probing never perturbs the measurement.
        assert_eq!(plain.drain.cycles, probed.drain.cycles, "{scheme}");
        assert_eq!(plain.drain.reads, probed.drain.reads, "{scheme}");
        assert_eq!(plain.drain.writes, probed.drain.writes, "{scheme}");
        assert_eq!(plain.drain.mac_ops, probed.drain.mac_ops, "{scheme}");
        assert_eq!(
            plain.drain.flushed_blocks, probed.drain.flushed_blocks,
            "{scheme}"
        );

        // The unprobed report carries no probe products, and (under a
        // real serde_json) none of the new keys appear on the wire —
        // its encoding is exactly the pre-probe one.
        assert!(plain.drain.utilization.is_none(), "{scheme}");
        assert!(plain.drain.critical_path.is_none(), "{scheme}");
        if serde_honors_skip() {
            let json = serde_json::to_string(&plain.drain).expect("serialize");
            assert!(!json.contains("utilization"), "{scheme}");
            assert!(!json.contains("critical_path"), "{scheme}");
        }
    }
}

#[test]
fn horus_drain_is_pcm_bank_bound() {
    let (result, _) = spec(DrainScheme::HorusSlm).execute_traced();
    let cp = result.drain.critical_path.expect("probed run attributes");
    assert_eq!(cp.bounding_resource, "pcm-bank");
    // Shares tile the episode: they never attribute more cycles than
    // the drain took.
    let attributed: u64 = cp.shares.iter().map(|s| s.cycles).sum();
    assert!(attributed <= cp.total_cycles);
    let frac: f64 = cp.shares.iter().map(|s| s.fraction).sum();
    assert!((frac - 1.0).abs() < 1e-9);
}
