//! The security test suite: every attack the threat model (paper §IV-A)
//! allows against the CHV must be detected at recovery (§IV-C.4), for
//! both Horus MAC granularities.

use horus::core::attack;
use horus::core::{DrainScheme, RecoveryError, SecureEpdSystem, SystemConfig};

fn crashed(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..64u64 {
        sys.write(i * 16448, [(i as u8).wrapping_mul(3).wrapping_add(1); 64])
            .expect("write");
    }
    sys.crash_and_drain(scheme);
    sys
}

fn assert_detected(sys: &mut SecureEpdSystem, what: &str) {
    match sys.recover() {
        Err(RecoveryError::ChvIntegrity { .. }) => {}
        other => panic!("{what}: expected ChvIntegrity, got {other:?}"),
    }
}

const BOTH: [DrainScheme; 2] = [DrainScheme::HorusSlm, DrainScheme::HorusDlm];

#[test]
fn untampered_vault_recovers() {
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        let rec = sys.recover().expect("clean vault verifies");
        assert!(rec.restored_blocks >= 64);
    }
}

#[test]
fn tampered_data_is_detected() {
    for scheme in BOTH {
        for entry in [0u64, 7, 33] {
            let mut sys = crashed(scheme);
            attack::tamper_data(&mut sys, entry);
            assert_detected(&mut sys, &format!("{scheme} data entry {entry}"));
        }
    }
}

#[test]
fn tampered_address_is_detected() {
    for scheme in BOTH {
        for entry in [1u64, 8, 40] {
            let mut sys = crashed(scheme);
            attack::tamper_address(&mut sys, entry);
            assert_detected(&mut sys, &format!("{scheme} address entry {entry}"));
        }
    }
}

#[test]
fn tampered_mac_is_detected() {
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        attack::tamper_mac(&mut sys, 12);
        assert_detected(&mut sys, &format!("{scheme} mac entry 12"));
    }
}

#[test]
fn full_splice_is_detected() {
    // Swapping entries *including* their address and MAC slots: only the
    // positional drain counter distinguishes them.
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        attack::splice_entries(&mut sys, 3, 19);
        assert_detected(&mut sys, &format!("{scheme} splice 3<->19"));
    }
}

#[test]
fn splice_within_one_mac_block_is_detected() {
    // Entries 0 and 5 share an address block and (SLM) a MAC block, so
    // even the coalesced-block granularity cannot hide the swap.
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        attack::splice_entries(&mut sys, 0, 5);
        assert_detected(&mut sys, &format!("{scheme} splice 0<->5"));
    }
}

#[test]
fn replayed_episode_is_detected() {
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        let snapshot = attack::snapshot_chv(&sys);
        sys.recover().expect("first recovery");
        for i in 0..64u64 {
            sys.write(i * 16448, [0xEE; 64]).expect("write");
        }
        sys.crash_and_drain(scheme);
        attack::replay_chv(&mut sys, &snapshot);
        assert_detected(&mut sys, &format!("{scheme} replay"));
    }
}

#[test]
fn truncation_is_detected() {
    for scheme in BOTH {
        let mut sys = crashed(scheme);
        let n = sys.episode().expect("episode").blocks;
        attack::truncate_chv(&mut sys, n - 2);
        assert_detected(&mut sys, &format!("{scheme} truncate"));
    }
}

#[test]
fn snapshot_covers_whole_episode() {
    let sys = crashed(DrainScheme::HorusSlm);
    let snap = attack::snapshot_chv(&sys);
    let n = sys.episode().expect("episode").blocks;
    assert!(!snap.is_empty());
    // Data + address + MAC blocks.
    assert_eq!(snap.len() as u64, n + 2 * n.div_ceil(8));
}

#[test]
fn tampered_shadow_region_is_detected_for_lazy_baseline() {
    // The Anubis-style shadow flush is protected by the small tree.
    let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), DrainScheme::BaseLazy);
    for i in 0..64u64 {
        sys.write(i * 16448, [5u8; 64]).expect("write");
    }
    sys.crash_and_drain(DrainScheme::BaseLazy);
    let shadow = sys.map().shadow_base();
    let mut block = sys.platform().nvm.device().read_block(shadow);
    block[17] ^= 0x40;
    // Direct attacker access to the device.
    sys.attacker_nvm().write_block(shadow, block);
    match sys.recover() {
        Err(RecoveryError::Metadata(_)) => {}
        other => panic!("expected shadow tamper detection, got {other:?}"),
    }
}

#[test]
fn runtime_nvm_tampering_is_detected_on_read() {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..512u64 {
        sys.write(i * 4096, [9u8; 64]).expect("write");
    }
    // Find a line that lives only in NVM and corrupt it.
    let victim = (0..512u64)
        .map(|i| i * 4096)
        .find(|a| {
            sys.platform().nvm.device().is_written(*a) && sys.hierarchy().llc().peek(*a).is_none()
        })
        .expect("an evicted line");
    let mut ct = sys.platform().nvm.device().read_block(victim);
    ct[2] ^= 2;
    sys.attacker_nvm().write_block(victim, ct);
    assert!(
        sys.read(victim).is_err(),
        "ciphertext tamper must fail the data MAC"
    );
}
