//! PCM endurance behaviour across draining episodes, and the CHV
//! rotation extension that levels vault wear.

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};

fn run_episodes(slots: u64, episodes: u32) -> SecureEpdSystem {
    let cfg = SystemConfig {
        chv_rotation_slots: slots,
        ..SystemConfig::small_test()
    };
    let mut sys = SecureEpdSystem::new(cfg);
    for ep in 0..episodes {
        for i in 0..40u64 {
            sys.write(i * 16448, [ep as u8 + 1; 64]).expect("write");
        }
        sys.crash_and_drain(DrainScheme::HorusSlm);
        sys.recover().expect("recover");
    }
    sys
}

#[test]
fn fixed_vault_wears_linearly_with_episodes() {
    let sys = run_episodes(1, 4);
    let wear = sys.platform().nvm.wear();
    let base = sys.map().chv_base();
    // With one slot, the first vault blocks were rewritten every episode.
    assert_eq!(wear.wear_of(base), 4);
}

#[test]
fn rotation_levels_vault_wear() {
    let sys = run_episodes(4, 4);
    let wear = sys.platform().nvm.wear();
    let slot_bytes = sys.config().chv_slot_blocks() * 64;
    let base = sys.map().chv_base();
    // Each of the four slots absorbed exactly one episode.
    for slot in 0..4u64 {
        assert_eq!(wear.wear_of(base + slot * slot_bytes), 1, "slot {slot}");
    }
    // Max wear anywhere in the vault region is 1.
    let vault_max = (0..sys.map().chv_blocks())
        .map(|b| wear.wear_of(base + b * 64))
        .max()
        .unwrap();
    assert_eq!(vault_max, 1);
}

#[test]
fn rotation_recovers_from_every_slot() {
    // The recovery must find the right slot for each episode.
    let cfg = SystemConfig {
        chv_rotation_slots: 3,
        ..SystemConfig::small_test()
    };
    let mut sys = SecureEpdSystem::new(cfg);
    for ep in 0..6u32 {
        let marker = (ep as u8).wrapping_mul(31).wrapping_add(1);
        for i in 0..24u64 {
            sys.write(i * 16448, [marker; 64]).expect("write");
        }
        let dr = sys.crash_and_drain(DrainScheme::HorusDlm);
        assert_eq!(sys.episode().unwrap().chv_slot, u64::from(ep) % 3);
        let rec = sys.recover().expect("recover from rotated slot");
        assert_eq!(rec.restored_blocks, dr.flushed_blocks + dr.metadata_blocks);
        assert_eq!(sys.read(0).expect("read"), [marker; 64]);
    }
}

#[test]
fn baseline_drains_wear_metadata_regions_horus_does_not() {
    let cfg = SystemConfig::small_test();
    let measure = |scheme: DrainScheme| {
        let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
        for i in 0..64u64 {
            sys.write(i * 16448, [1; 64]).expect("write");
        }
        sys.crash_and_drain(scheme);
        let map = sys.map().clone();
        let wear = sys.platform().nvm.wear();
        let tree: u64 = (0..map.bmt_levels())
            .map(|l| wear.writes_in_range(map.bmt_node_addr(l, 0), map.bmt_level_nodes(l)))
            .sum();
        (tree, wear.writes_in_range(map.chv_base(), map.chv_blocks()))
    };
    let (tree_lu, chv_lu) = measure(DrainScheme::BaseLazy);
    let (tree_horus, chv_horus) = measure(DrainScheme::HorusSlm);
    assert!(tree_lu > 0, "baseline drain must write tree nodes");
    assert_eq!(chv_lu, 0, "baseline never touches the vault");
    assert_eq!(tree_horus, 0, "Horus drain never writes tree nodes");
    assert!(chv_horus > 0, "Horus writes the vault");
}
