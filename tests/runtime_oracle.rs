//! Run-time path stress: the secure EPD system must behave exactly like
//! a plain map under arbitrary read/write traces, with the metadata
//! verification invariant holding throughout — including across a crash
//! in the middle of the trace.

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::workload::{AccessTrace, Op, TraceConfig};
use std::collections::HashMap;

fn run_trace(sys: &mut SecureEpdSystem, trace: &AccessTrace, oracle: &mut HashMap<u64, u8>) {
    for op in trace {
        match *op {
            Op::Write { addr, value } => {
                sys.write(addr, [value; 64]).expect("write verifies");
                oracle.insert(addr, value);
            }
            Op::Read { addr } => {
                let got = sys.read(addr).expect("read verifies");
                let expected = oracle.get(&addr).copied().map_or([0u8; 64], |v| [v; 64]);
                assert_eq!(got, expected, "mismatch at {addr:#x}");
            }
        }
    }
}

fn trace(seed: u64, ops: usize) -> AccessTrace {
    AccessTrace::generate(&TraceConfig {
        ops,
        write_fraction: 0.6,
        working_set_blocks: 192,
        locality: 0.85,
        total_blocks: 32 * 1024,
        seed,
    })
}

#[test]
fn system_matches_oracle_under_random_traces() {
    for seed in [1u64, 99] {
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        let mut oracle = HashMap::new();
        run_trace(&mut sys, &trace(seed, 4000), &mut oracle);
        sys.debug_check_metadata().expect("metadata invariant");
    }
}

#[test]
fn crash_mid_trace_loses_nothing() {
    for scheme in [DrainScheme::HorusSlm, DrainScheme::HorusDlm] {
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        let mut oracle = HashMap::new();
        run_trace(&mut sys, &trace(7, 2500), &mut oracle);

        sys.crash_and_drain(scheme);
        sys.recover().expect("recovery");

        // Every value the application ever wrote is still there — the
        // eADR promise: reaching the cache hierarchy IS persistence.
        for (addr, v) in &oracle {
            assert_eq!(
                sys.read(*addr).expect("read"),
                [*v; 64],
                "{scheme} addr {addr:#x}"
            );
        }
        // And the system keeps working after recovery.
        run_trace(&mut sys, &trace(8, 1500), &mut oracle);
        sys.debug_check_metadata()
            .expect("metadata invariant after recovery");
    }
}

#[test]
fn baseline_crash_mid_trace_loses_nothing() {
    for scheme in [DrainScheme::BaseLazy, DrainScheme::BaseEager] {
        let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
        let mut oracle = HashMap::new();
        run_trace(&mut sys, &trace(21, 2500), &mut oracle);
        sys.crash_and_drain(scheme);
        sys.recover().expect("recovery");
        for (addr, v) in &oracle {
            assert_eq!(
                sys.read(*addr).expect("read"),
                [*v; 64],
                "{scheme} addr {addr:#x}"
            );
        }
    }
}

#[test]
fn counter_overflow_mid_trace_is_transparent() {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    // Force >127 NVM write-backs of one block, interleaved with sibling
    // traffic so the page re-encryption has real victims to move.
    sys.write(0x40, [1; 64]).expect("sibling");
    for round in 0..150u8 {
        sys.write(0, [round; 64]).expect("write");
        // Evict it by filling conflicting lines.
        for i in 1..200u64 {
            sys.write(i * 16448, [0; 64]).expect("filler");
        }
    }
    assert!(
        sys.platform().nvm.stats().get("mem.write.reenc") > 0,
        "overflow must re-encrypt"
    );
    assert_eq!(sys.read(0).expect("read"), [149; 64]);
    assert_eq!(sys.read(0x40).expect("read"), [1; 64]);
    sys.debug_check_metadata()
        .expect("metadata invariant after overflow");
}
