//! Property-based tests on the core invariants (DESIGN.md's list).

use horus::cache::{CacheGeometry, SetAssocCache};
use horus::core::chv::{ChvLayout, MacGranularity};
use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::crypto::{otp, Aes128, Cmac};
use horus::harness::{Harness, JobSpec};
use horus::metadata::CounterBlock;
use horus::sim::{Cycles, SlotResource};
use horus::workload::FillPattern;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AES-128 decrypt ∘ encrypt is the identity for any key and block.
    #[test]
    fn aes_roundtrip(key in prop::array::uniform16(any::<u8>()),
                     block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// Counter-mode encryption is an involution, and any change to the
    /// (address, counter) seed garbles the decryption.
    #[test]
    fn ctr_mode_roundtrip_and_seed_sensitivity(
        key in prop::array::uniform16(any::<u8>()),
        data in prop::array::uniform32(any::<u8>()),
        addr in (0u64..1 << 40).prop_map(|a| a & !63),
        counter in 1u64..1 << 40,
    ) {
        let aes = Aes128::new(&key);
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&data);
        let ct = otp::encrypt_block_ctr(&aes, addr, counter, &block);
        prop_assert_eq!(otp::decrypt_block_ctr(&aes, addr, counter, &ct), block);
        prop_assert_ne!(otp::decrypt_block_ctr(&aes, addr, counter + 1, &ct), block);
        prop_assert_ne!(otp::decrypt_block_ctr(&aes, addr ^ 64, counter, &ct), block);
    }

    /// CMAC distinguishes any two distinct short messages we generate.
    #[test]
    fn cmac_detects_any_flip(
        key in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cmac = Cmac::new(&key);
        let tag = cmac.mac64(&msg);
        let mut tampered = msg.clone();
        let idx = flip_byte.index(tampered.len());
        tampered[idx] ^= 1 << flip_bit;
        prop_assert_ne!(cmac.mac64(&tampered), tag);
        prop_assert!(cmac.verify64(&msg, tag));
    }

    /// Split-counter blocks round-trip through their packed 64-byte
    /// layout for any counter state.
    #[test]
    fn counter_block_packing_roundtrip(
        bumps in prop::collection::vec((0usize..64, 1u32..160), 0..40),
    ) {
        let mut cb = CounterBlock::new();
        for (slot, n) in bumps {
            for _ in 0..n {
                cb.increment(slot);
            }
        }
        prop_assert_eq!(CounterBlock::from_block(&cb.to_block()), cb);
    }

    /// Counters never go backwards for any slot across any bump
    /// sequence, and the bumped slot strictly increases (no pad reuse) —
    /// even through minor-counter overflows, which jump every sibling to
    /// a larger major-based value.
    #[test]
    fn counters_never_regress(ops in prop::collection::vec(0usize..64, 1..600)) {
        let mut cb = CounterBlock::new();
        let mut prev = [0u64; 64];
        for slot in ops {
            let before = prev[slot];
            cb.increment(slot);
            for (s, p) in prev.iter_mut().enumerate() {
                let now = cb.counter(s);
                prop_assert!(now >= *p, "slot {} regressed: {} -> {}", s, p, now);
                *p = now;
            }
            prop_assert!(prev[slot] > before, "bumped slot {} did not advance", slot);
        }
    }

    /// CHV layout: data, address and MAC blocks never collide for either
    /// granularity, over arbitrary episode lengths.
    #[test]
    fn chv_layout_never_overlaps(n in 1u64..600, dlm in any::<bool>()) {
        let mode = if dlm { MacGranularity::DoubleLevel } else { MacGranularity::SingleLevel };
        let l = ChvLayout::new(1 << 20, mode);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            prop_assert!(seen.insert(l.data_addr(i)), "data {} collides", i);
        }
        for i in (0..n).step_by(8) {
            prop_assert!(seen.insert(l.addr_block_addr(i)), "addr block {} collides", i);
        }
        let step = if dlm { 64 } else { 8 };
        for i in (0..n).step_by(step) {
            prop_assert!(seen.insert(l.mac_block_addr(i)), "mac block {} collides", i);
        }
        // And the episode fits in the accounted footprint.
        let max = seen.iter().max().copied().unwrap_or(0);
        prop_assert!(max < (1 << 20) + l.blocks_used(n) * 64 + 73 * 64);
    }

    /// Exclusive slot-resource scheduling never double-books a slot —
    /// every issued operation gets its own quantum-aligned start — and
    /// `reset()` restores a pristine schedule: reissuing the identical
    /// ready sequence reproduces the identical completions, and the
    /// resource stays overlap-free when reused with a different one.
    #[test]
    fn slot_resource_exclusive_never_overlaps_across_reset_reuse(
        quantum in 1u64..64,
        readies_a in prop::collection::vec(0u64..10_000, 1..60),
        readies_b in prop::collection::vec(0u64..10_000, 1..60),
    ) {
        // Latency <= quantum, so every op claims exactly one slot:
        // distinct start times are exactly the no-overlap property.
        let mut r = SlotResource::exclusive("pcm", Cycles(1), quantum);
        let issue_all = |r: &mut SlotResource, readies: &[u64]| -> Vec<(u64, u64)> {
            readies
                .iter()
                .map(|t| {
                    let c = r.issue(Cycles(*t));
                    (c.start.0, c.done.0)
                })
                .collect()
        };

        let first = issue_all(&mut r, &readies_a);
        r.reset();
        prop_assert_eq!(r.ops(), 0);
        prop_assert_eq!(r.occupied_cycles(), 0);
        let replay = issue_all(&mut r, &readies_a);
        prop_assert_eq!(&first, &replay, "reset must restore a pristine schedule");
        r.reset();
        let second = issue_all(&mut r, &readies_b);

        for (phase, readies) in [(&first, &readies_a), (&second, &readies_b)] {
            let starts: std::collections::HashSet<u64> =
                phase.iter().map(|(start, _)| *start).collect();
            prop_assert_eq!(
                starts.len(),
                phase.len(),
                "two exclusive ops were scheduled into the same slot"
            );
            for ((start, done), ready) in phase.iter().zip(readies.iter()) {
                prop_assert_eq!(start % quantum, 0, "start is slot-aligned");
                prop_assert!(start >= ready, "op started before it was ready");
                prop_assert!(done > start);
            }
        }
        // r was reset between phases, so its counters reflect only the
        // most recent one.
        prop_assert_eq!(r.ops(), second.len() as u64);
        prop_assert_eq!(r.occupied_cycles(), second.len() as u64 * quantum);
    }

    /// A set-associative cache behaves like a map: whatever lookup
    /// returns equals the last inserted/written value.
    #[test]
    fn cache_matches_reference_map(
        ops in prop::collection::vec((0u64..64, any::<u8>(), any::<bool>()), 1..300),
    ) {
        let mut cache = SetAssocCache::new(CacheGeometry::new("p", 16 * 64, 2));
        let mut reference = std::collections::HashMap::new();
        for (blk, val, write) in ops {
            let addr = blk * 64;
            if write {
                cache.insert(addr, [val; 64], true);
                reference.insert(addr, val);
            } else if let Some(data) = cache.lookup(addr) {
                prop_assert_eq!(data, &[reference[&addr]; 64]);
            }
        }
        // Every line still cached matches the reference.
        for (addr, data, _) in cache.iter() {
            prop_assert_eq!(data, &[reference[&addr]; 64]);
        }
    }
}

proptest! {
    // The end-to-end property is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// drain → recover is the identity on arbitrary sets of dirty lines,
    /// for both Horus schemes.
    #[test]
    fn drain_recover_identity(
        writes in prop::collection::btree_map(0u64..1000, any::<u8>(), 1..80),
        dlm in any::<bool>(),
    ) {
        let scheme = if dlm { DrainScheme::HorusDlm } else { DrainScheme::HorusSlm };
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        for (blk, val) in &writes {
            // Spread blocks so the tiny hierarchy holds them.
            sys.write(blk * 16448, [*val; 64]).expect("write");
        }
        sys.crash_and_drain(scheme);
        sys.recover().expect("clean vault");
        for (blk, val) in &writes {
            prop_assert_eq!(sys.read(blk * 16448).expect("read"), [*val; 64]);
        }
    }
}

proptest! {
    // Each case runs every spec twice (serial + parallel); keep the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The harness determinism contract: running a sweep with *any*
    /// worker count produces outcomes, merged statistics, and rendered
    /// reports byte-identical to the one-worker serial reference.
    #[test]
    fn harness_parallel_run_is_byte_identical_to_serial(
        jobs in 2usize..9,
        seeds in prop::collection::vec(0u64..1_000, 1..4),
        recover in any::<bool>(),
    ) {
        let specs: Vec<JobSpec> = seeds
            .iter()
            .flat_map(|seed| {
                let mut cfg = SystemConfig::small_test();
                cfg.seed = *seed;
                DrainScheme::ALL
                    .iter()
                    .map(|s| {
                        let pattern = FillPattern::StridedSparse { min_stride: 16384 };
                        if recover && s.is_horus() {
                            JobSpec::drain_recover(&cfg, *s, pattern)
                        } else {
                            JobSpec::drain(&cfg, *s, pattern)
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        let serial = Harness::serial().run(&specs);
        let parallel = Harness::with_jobs(jobs).run(&specs);

        prop_assert_eq!(&serial.outcomes, &parallel.outcomes);
        prop_assert_eq!(serial.merged_stats(), parallel.merged_stats());
        // Byte-identical over the full serialized surface — the exact
        // artifact a memoizing cache or report renderer would consume.
        prop_assert_eq!(
            serde_json::to_string(&serial.outcomes).expect("serialize"),
            serde_json::to_string(&parallel.outcomes).expect("serialize")
        );
    }
}
