//! Property-based tests on the core invariants (DESIGN.md's list).

use horus::cache::{CacheGeometry, SetAssocCache};
use horus::core::chv::{ChvLayout, MacGranularity};
use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::crypto::{otp, Aes128, Cmac};
use horus::metadata::CounterBlock;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AES-128 decrypt ∘ encrypt is the identity for any key and block.
    #[test]
    fn aes_roundtrip(key in prop::array::uniform16(any::<u8>()),
                     block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// Counter-mode encryption is an involution, and any change to the
    /// (address, counter) seed garbles the decryption.
    #[test]
    fn ctr_mode_roundtrip_and_seed_sensitivity(
        key in prop::array::uniform16(any::<u8>()),
        data in prop::array::uniform32(any::<u8>()),
        addr in (0u64..1 << 40).prop_map(|a| a & !63),
        counter in 1u64..1 << 40,
    ) {
        let aes = Aes128::new(&key);
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&data);
        let ct = otp::encrypt_block_ctr(&aes, addr, counter, &block);
        prop_assert_eq!(otp::decrypt_block_ctr(&aes, addr, counter, &ct), block);
        prop_assert_ne!(otp::decrypt_block_ctr(&aes, addr, counter + 1, &ct), block);
        prop_assert_ne!(otp::decrypt_block_ctr(&aes, addr ^ 64, counter, &ct), block);
    }

    /// CMAC distinguishes any two distinct short messages we generate.
    #[test]
    fn cmac_detects_any_flip(
        key in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cmac = Cmac::new(&key);
        let tag = cmac.mac64(&msg);
        let mut tampered = msg.clone();
        let idx = flip_byte.index(tampered.len());
        tampered[idx] ^= 1 << flip_bit;
        prop_assert_ne!(cmac.mac64(&tampered), tag);
        prop_assert!(cmac.verify64(&msg, tag));
    }

    /// Split-counter blocks round-trip through their packed 64-byte
    /// layout for any counter state.
    #[test]
    fn counter_block_packing_roundtrip(
        bumps in prop::collection::vec((0usize..64, 1u32..160), 0..40),
    ) {
        let mut cb = CounterBlock::new();
        for (slot, n) in bumps {
            for _ in 0..n {
                cb.increment(slot);
            }
        }
        prop_assert_eq!(CounterBlock::from_block(&cb.to_block()), cb);
    }

    /// Counters never go backwards for any slot across any bump
    /// sequence, and the bumped slot strictly increases (no pad reuse) —
    /// even through minor-counter overflows, which jump every sibling to
    /// a larger major-based value.
    #[test]
    fn counters_never_regress(ops in prop::collection::vec(0usize..64, 1..600)) {
        let mut cb = CounterBlock::new();
        let mut prev = [0u64; 64];
        for slot in ops {
            let before = prev[slot];
            cb.increment(slot);
            for (s, p) in prev.iter_mut().enumerate() {
                let now = cb.counter(s);
                prop_assert!(now >= *p, "slot {} regressed: {} -> {}", s, p, now);
                *p = now;
            }
            prop_assert!(prev[slot] > before, "bumped slot {} did not advance", slot);
        }
    }

    /// CHV layout: data, address and MAC blocks never collide for either
    /// granularity, over arbitrary episode lengths.
    #[test]
    fn chv_layout_never_overlaps(n in 1u64..600, dlm in any::<bool>()) {
        let mode = if dlm { MacGranularity::DoubleLevel } else { MacGranularity::SingleLevel };
        let l = ChvLayout::new(1 << 20, mode);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            prop_assert!(seen.insert(l.data_addr(i)), "data {} collides", i);
        }
        for i in (0..n).step_by(8) {
            prop_assert!(seen.insert(l.addr_block_addr(i)), "addr block {} collides", i);
        }
        let step = if dlm { 64 } else { 8 };
        for i in (0..n).step_by(step) {
            prop_assert!(seen.insert(l.mac_block_addr(i)), "mac block {} collides", i);
        }
        // And the episode fits in the accounted footprint.
        let max = seen.iter().max().copied().unwrap_or(0);
        prop_assert!(max < (1 << 20) + l.blocks_used(n) * 64 + 73 * 64);
    }

    /// A set-associative cache behaves like a map: whatever lookup
    /// returns equals the last inserted/written value.
    #[test]
    fn cache_matches_reference_map(
        ops in prop::collection::vec((0u64..64, any::<u8>(), any::<bool>()), 1..300),
    ) {
        let mut cache = SetAssocCache::new(CacheGeometry::new("p", 16 * 64, 2));
        let mut reference = std::collections::HashMap::new();
        for (blk, val, write) in ops {
            let addr = blk * 64;
            if write {
                cache.insert(addr, [val; 64], true);
                reference.insert(addr, val);
            } else if let Some(data) = cache.lookup(addr) {
                prop_assert_eq!(data, &[reference[&addr]; 64]);
            }
        }
        // Every line still cached matches the reference.
        for (addr, data, _) in cache.iter() {
            prop_assert_eq!(data, &[reference[&addr]; 64]);
        }
    }
}

proptest! {
    // The end-to-end property is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// drain → recover is the identity on arbitrary sets of dirty lines,
    /// for both Horus schemes.
    #[test]
    fn drain_recover_identity(
        writes in prop::collection::btree_map(0u64..1000, any::<u8>(), 1..80),
        dlm in any::<bool>(),
    ) {
        let scheme = if dlm { DrainScheme::HorusDlm } else { DrainScheme::HorusSlm };
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        for (blk, val) in &writes {
            // Spread blocks so the tiny hierarchy holds them.
            sys.write(blk * 16448, [*val; 64]).expect("write");
        }
        sys.crash_and_drain(scheme);
        sys.recover().expect("clean vault");
        for (blk, val) in &writes {
            prop_assert_eq!(sys.read(blk * 16448).expect("read"), [*val; 64]);
        }
    }
}
