//! Golden tests for the sharded episode core: `--sim-threads N` must be
//! byte-identical to the single-threaded reference run — serialized job
//! results (op counts, `Stats` JSON) and exported golden traces alike.
//!
//! Companion to `trace_golden.rs`: that file pins determinism across
//! *harness worker* counts; this one pins it across the `EpisodeShards`
//! pool sizes the new `--sim-threads` flag selects (the CI matrix runs
//! {1, 2, 8}).

use horus::core::{DrainScheme, SystemConfig};
use horus::harness::JobSpec;
use horus::sim::{chrome_trace_json, EpisodeShards};
use horus::workload::FillPattern;

fn spec(scheme: DrainScheme) -> JobSpec {
    JobSpec::drain(
        &SystemConfig::small_test(),
        scheme,
        FillPattern::StridedSparse { min_stride: 16384 },
    )
}

/// Serializes the five smoke-scale scheme episodes after fanning them out
/// over a pool of `threads` workers. The JSON string is the comparison
/// unit so every field — op counts, stats counters, histograms — is held
/// to byte identity, not just the headline numbers.
fn results_json(threads: usize) -> String {
    let shards = EpisodeShards::new(threads);
    let results = shards.run(
        DrainScheme::ALL
            .iter()
            .map(|&s| {
                let spec = spec(s);
                move || spec.execute()
            })
            .collect(),
    );
    serde_json::to_string(&results).expect("job results serialize")
}

#[test]
fn sim_threads_results_are_byte_identical_across_pool_sizes() {
    let reference = results_json(1);
    for threads in [2usize, 8] {
        assert_eq!(
            results_json(threads),
            reference,
            "--sim-threads {threads} diverged from the single-threaded run"
        );
    }
}

#[test]
fn sim_threads_golden_traces_are_byte_identical() {
    // Probed episodes: the full cycle-stamped event stream must survive
    // sharding, not just the aggregate counts.
    let traces = |threads: usize| -> Vec<String> {
        EpisodeShards::new(threads).run(
            DrainScheme::ALL
                .iter()
                .map(|&s| {
                    let spec = spec(s);
                    move || {
                        let (_, trace) = spec.execute_traced();
                        chrome_trace_json(&trace)
                    }
                })
                .collect(),
        )
    };
    let reference = traces(1);
    assert_eq!(reference.len(), DrainScheme::ALL.len());
    for json in &reference {
        assert!(json.starts_with("{\"traceEvents\":["));
    }
    for threads in [2usize, 8] {
        assert_eq!(traces(threads), reference, "threads = {threads}");
    }
}

#[test]
fn sim_threads_merge_preserves_scheme_order() {
    // The merged vector must line up with DrainScheme::ALL submission
    // order, whatever order the workers finished in.
    let results = EpisodeShards::new(8).run(
        DrainScheme::ALL
            .iter()
            .map(|&s| {
                let spec = spec(s);
                move || spec.execute()
            })
            .collect(),
    );
    let names: Vec<&str> = results.iter().map(|r| r.drain.scheme.as_str()).collect();
    let expected: Vec<&str> = DrainScheme::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(names, expected);
}
