//! Acceptance tests for the migrated `repro-all` pipeline: the
//! generated `EXPERIMENTS.md` markdown must be byte-identical for any
//! `--jobs` count, and an immediately repeated invocation against a
//! warm result cache must complete with 100% cache hits — zero
//! re-executed simulations.
//!
//! Runs the real pipeline on [`ReproPlan::smoke`] (same code path as
//! the binary, miniature configuration) so the test finishes in
//! seconds.

use horus::harness::{Harness, HarnessOptions, ProgressMode};
use horus_bench::repro_all::{self, ReproPlan};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("horus-repro-all-it-{tag}-{}", std::process::id()))
}

fn cached_harness(dir: &Path, jobs: usize) -> Harness {
    Harness::new(HarnessOptions {
        jobs: Some(jobs),
        cache_dir: Some(dir.to_path_buf()),
        no_cache: false,
        progress: ProgressMode::Silent,
        ..HarnessOptions::default()
    })
}

#[test]
fn parallel_markdown_is_byte_identical_and_repeat_run_is_all_cache_hits() {
    let dir = scratch_dir("accept");
    let _ = std::fs::remove_dir_all(&dir);
    let plan = ReproPlan::smoke();

    // Serial reference: one worker, no cache.
    let serial = repro_all::run(&Harness::serial(), &plan);

    // Parallel, cold cache.
    let cold_harness = cached_harness(&dir, 4);
    let cold = repro_all::run(&cold_harness, &plan);
    assert_eq!(
        serial.markdown, cold.markdown,
        "EXPERIMENTS.md content must not depend on the worker count"
    );
    let (cold_executed, _) = cold_harness.totals();
    assert!(cold_executed > 0, "cold run executes simulations");

    // Immediate repeat: everything memoized, nothing re-simulated.
    let warm_harness = cached_harness(&dir, 4);
    let warm = repro_all::run(&warm_harness, &plan);
    assert_eq!(warm.markdown, serial.markdown);
    let (warm_executed, warm_hits) = warm_harness.totals();
    assert_eq!(warm_executed, 0, "repeat invocation re-executes nothing");
    assert!(warm_hits > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn paper_scale_plans_share_the_sweep_shape() {
    // The full and quick plans drive the same pipeline; this pins their
    // intended scales so an accidental edit can't silently shrink the
    // published full run.
    let full = ReproPlan::full();
    assert_eq!(full.sweep_llc, vec![8 << 20, 16 << 20, 32 << 20]);
    assert_eq!(full.recovery_llc.len(), 5);
    let quick = ReproPlan::quick();
    assert_eq!(quick.base, full.base);
    assert!(quick.sweep_llc.len() < full.sweep_llc.len());
}

#[test]
fn smoke_claim_table_lists_every_headline_claim() {
    // The tolerance gate is wired off these checks; make sure the
    // pipeline emits all eight and that the markdown carries the table.
    let plan = ReproPlan::smoke();
    let out = repro_all::run(&Harness::serial(), &plan);
    assert_eq!(out.checks.len(), 8);
    assert!(out.markdown.contains("## Headline claims"));
    assert!(out
        .markdown
        .contains("| claim | paper | measured | tolerance | within |"));
    for c in &out.checks {
        assert!(
            out.markdown.contains(c.claim),
            "claim '{}' rendered",
            c.claim
        );
    }
}
