//! Compares the EPD hold-up cost of all five drain schemes — the
//! experiment motivating the paper (its Figures 6 and 11, at a reduced
//! LLC so the example runs in seconds).
//!
//! Run with: `cargo run --release --example drain_comparison`

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::prelude::*;

fn main() {
    // 8 MB LLC keeps the debug-build runtime reasonable; pass --release
    // and bump to 16 MB (`with_llc_bytes(16 << 20)`) for Table I scale.
    let cfg = SystemConfig::with_llc_bytes(8 << 20);
    let fill = FillPattern::StridedSparse {
        min_stride: 16 * 1024,
    };
    println!(
        "draining a {} MB LLC hierarchy ({} worst-case dirty lines)\n",
        cfg.hierarchy.llc_bytes >> 20,
        cfg.hierarchy.total_lines()
    );
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "scheme", "requests", "MAC calcs", "cycles", "time", "battery"
    );

    let model = DrainEnergyModel::paper_default();
    let supercap = Battery::super_capacitor();
    let mut nonsecure_requests = None;
    for scheme in DrainScheme::ALL {
        let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
        fill_hierarchy(sys.hierarchy_mut(), fill, cfg.data_bytes, cfg.seed);
        let r = sys.crash_and_drain(scheme);
        let energy = model.drain_energy(&r);
        println!(
            "{:<11} {:>12} {:>12} {:>12} {:>8.2}ms {:>7.2}cm3",
            r.scheme,
            r.reads + r.writes,
            r.mac_ops,
            r.cycles,
            r.seconds * 1e3,
            supercap.volume_cm3(energy.total_j),
        );
        if scheme == DrainScheme::NonSecure {
            nonsecure_requests = Some(r.reads + r.writes);
        } else if let Some(ns) = nonsecure_requests {
            let blowup = (r.reads + r.writes) as f64 / ns as f64;
            if blowup > 2.0 {
                println!("{:<11}   ^- {blowup:.1}x the non-secure request count", "");
            }
        }
    }
    println!("\nHorus keeps the secure drain within ~1.3-2x of the non-secure one;");
    println!("the baselines need ~7-10x the memory requests and a ~4-5x bigger battery.");
}
