//! Quickstart: a secure EPD system surviving a power failure.
//!
//! Builds a small secure EPD memory system, runs a few persistent
//! writes, simulates an outage drained through the Horus vault, and
//! recovers — printing what the drain cost.
//!
//! Run with: `cargo run --example quickstart`

use horus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down system (semantics identical to the paper's Table I
    // configuration; see `SystemConfig::paper_default()` for that one).
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());

    // A persistent application updates its data. Writes land in the
    // cache hierarchy — with eADR, that already counts as persisted.
    println!("writing 32 records into the persistence domain…");
    for i in 0..32u64 {
        let mut record = [0u8; 64];
        record[..8].copy_from_slice(&(i * 1000).to_le_bytes());
        sys.write(0x10_000 + i * 16448, record)?;
    }

    // Power failure! The EPD back-up power drains the dirty hierarchy
    // into the cache hierarchy vault (Horus-SLM scheme).
    let drain = sys.crash_and_drain(DrainScheme::HorusSlm);
    println!(
        "\npower failed: drained {} blocks (+{} metadata) in {:.3} ms",
        drain.flushed_blocks,
        drain.metadata_blocks,
        drain.seconds * 1e3
    );
    println!(
        "  memory writes: {}   reads: {}   MAC computations: {}",
        drain.writes, drain.reads, drain.mac_ops
    );

    // What does that cost in back-up energy and battery volume?
    let energy = DrainEnergyModel::paper_default().drain_energy(&drain);
    println!(
        "  drain energy: {:.4} J  ->  {:.4} cm^3 of super-capacitor",
        energy.total_j,
        Battery::super_capacitor().volume_cm3(energy.total_j)
    );

    // Power returns: read the vault back, verify every MAC, decrypt,
    // and restore the hierarchy.
    let rec = sys.recover()?;
    println!(
        "\npower restored: recovered {} blocks in {:.3} ms ({} reads, {} MACs)",
        rec.restored_blocks,
        rec.seconds * 1e3,
        rec.reads,
        rec.mac_ops
    );

    // The application's data survived, bit for bit.
    for i in 0..32u64 {
        let record = sys.read(0x10_000 + i * 16448)?;
        assert_eq!(u64::from_le_bytes(record[..8].try_into()?), i * 1000);
    }
    println!("all 32 records verified intact.");
    Ok(())
}
