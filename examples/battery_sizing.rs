//! Sizes the EPD hold-up battery across LLC sizes and drain schemes —
//! the capacity-planning question behind the paper's Tables II/III and
//! its observation that bigger caches make naive secure EPD unshippable.
//!
//! Run with: `cargo run --release --example battery_sizing`

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::prelude::*;

fn main() {
    let model = DrainEnergyModel::paper_default();
    let supercap = Battery::super_capacitor();
    let lithium = Battery::lithium_thin_film();
    let fill = FillPattern::StridedSparse {
        min_stride: 16 * 1024,
    };

    println!(
        "{:<8} {:<11} {:>10} {:>11} {:>14} {:>12}",
        "LLC", "scheme", "energy", "SuperCap", "Li-thin-film", "hold-up"
    );
    for mb in [4u64, 8, 16] {
        let cfg = SystemConfig::with_llc_bytes(mb << 20);
        for scheme in [
            DrainScheme::NonSecure,
            DrainScheme::BaseLazy,
            DrainScheme::HorusDlm,
        ] {
            let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
            fill_hierarchy(sys.hierarchy_mut(), fill, cfg.data_bytes, cfg.seed);
            let report = sys.crash_and_drain(scheme);
            let e = model.drain_energy(&report);
            println!(
                "{:<8} {:<11} {:>8.2} J {:>7.2} cm3 {:>10.4} cm3 {:>9.2} ms",
                format!("{mb} MB"),
                report.scheme,
                e.total_j,
                supercap.volume_cm3(e.total_j),
                lithium.volume_cm3(e.total_j),
                report.seconds * 1e3,
            );
        }
        println!();
    }
    println!("the baseline's battery grows ~4-5x faster with LLC size than Horus's —");
    println!("exactly the scaling problem that motivates decoupling the drain from");
    println!("the main security metadata.");
}
