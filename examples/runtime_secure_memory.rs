//! Exercises the run-time secure-memory path (no crash involved): a
//! synthetic key-value-store-like trace runs against the encrypted,
//! integrity-protected NVM, showing counter-cache behaviour, Merkle-tree
//! traffic, and a split-counter overflow with page re-encryption.
//!
//! Run with: `cargo run --release --example runtime_secure_memory`

use horus::core::{SecureEpdSystem, SystemConfig};
use horus::workload::{AccessTrace, Op, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());

    // A hot/cold mix: 85% of accesses hit a 256-block working set.
    let trace = AccessTrace::generate(&TraceConfig {
        ops: 20_000,
        write_fraction: 0.6,
        working_set_blocks: 256,
        locality: 0.85,
        total_blocks: 64 * 1024, // 4 MB of the protected space
        seed: 2026,
    });

    println!(
        "running {} operations ({} writes)…",
        trace.len(),
        trace.writes()
    );
    let mut shadow = std::collections::HashMap::new();
    for op in &trace {
        match *op {
            Op::Write { addr, value } => {
                sys.write(addr, [value; 64])?;
                shadow.insert(addr, value);
            }
            Op::Read { addr } => {
                let got = sys.read(addr)?;
                match shadow.get(&addr) {
                    Some(v) => assert_eq!(got, [*v; 64], "read mismatch at {addr:#x}"),
                    // Never-written blocks read as verified zeros.
                    None => assert_eq!(got, [0u8; 64], "uninit read at {addr:#x}"),
                }
            }
        }
    }

    let stats = sys.platform().merged_stats();
    println!("\nrun-time secure-memory traffic:");
    for key in [
        "mem.write.data",
        "mem.read.data",
        "mem.read.counter",
        "mem.read.tree",
        "mem.read.mac",
        "mem.write.counter_evict",
        "mem.write.tree_evict",
        "mem.write.mac_evict",
        "macop.verify_counter",
        "macop.verify_tree",
        "macop.verify_data",
        "macop.data_mac",
        "macop.update_tree",
    ] {
        println!("  {key:<26} {:>10}", stats.get(key));
    }
    println!(
        "  counter cache: {} hits / {} misses",
        sys.metadata().counter_cache().hits(),
        sys.metadata().counter_cache().misses()
    );

    // Hammer one block enough times to overflow its 7-bit minor counter:
    // the whole 4 KB page must be transparently re-encrypted.
    println!("\nhammering one block 200 times to force a minor-counter overflow…");
    for round in 0..200u8 {
        sys.write(0x200_000, [round; 64])?;
        // Push it out of the hierarchy so each round writes to NVM.
        for i in 0..512u64 {
            sys.write(0x300_000 + i * 16448, [0u8; 64])?;
        }
    }
    let reencrypted = sys.platform().nvm.stats().get("mem.write.reenc");
    println!("  page re-encryption writes: {reencrypted}");
    assert!(reencrypted > 0, "expected at least one overflow");
    assert_eq!(
        sys.read(0x200_000)?,
        [199; 64],
        "data survives re-encryption"
    );
    println!("  hammered block still reads back correctly through verification.");
    Ok(())
}
