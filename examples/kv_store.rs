//! A tiny crash-consistent key-value store on top of the secure EPD
//! system — the application class (key-value stores, databases) the
//! paper's introduction motivates EPD with.
//!
//! The store keeps a fixed-capacity hash index; every `put` is a single
//! `persist` into the persistence domain. With eADR semantics a put is
//! durable the moment it is issued, so the store needs **no write-ahead
//! log and no flush/fence pairs** — and, with Horus underneath, the
//! platform's hold-up battery stays small.
//!
//! Run with: `cargo run --release --example kv_store`

use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus::metadata::IntegrityError;

/// Keys and values are fixed-size for simplicity: 8-byte key, 48-byte
/// value, one 64-byte block per slot (key | value | valid tag).
struct KvStore {
    sys: SecureEpdSystem,
    slots: u64,
    base: u64,
}

const VALUE_LEN: usize = 48;

impl KvStore {
    fn new(slots: u64) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        Self {
            sys: SecureEpdSystem::new(SystemConfig::small_test()),
            slots,
            base: 0x10_000,
        }
    }

    fn slot_addr(&self, key: u64, probe: u64) -> u64 {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        self.base + ((h + probe) % self.slots) * 64
    }

    fn encode(key: u64, value: &[u8]) -> [u8; 64] {
        let mut block = [0u8; 64];
        block[..8].copy_from_slice(&key.to_le_bytes());
        block[8..8 + value.len()].copy_from_slice(value);
        block[63] = 1; // valid tag
        block
    }

    /// Durable insert (linear probing; panics when full — it's a demo).
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), IntegrityError> {
        assert!(value.len() <= VALUE_LEN, "value too large");
        for probe in 0..self.slots {
            let addr = self.slot_addr(key, probe);
            let block = self.sys.read(addr)?;
            let occupied = block[63] == 1;
            let same_key = u64::from_le_bytes(block[..8].try_into().expect("8 bytes")) == key;
            if !occupied || same_key {
                self.sys.persist(addr, Self::encode(key, value))?;
                return Ok(());
            }
        }
        panic!("store full");
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, IntegrityError> {
        for probe in 0..self.slots {
            let addr = self.slot_addr(key, probe);
            let block = self.sys.read(addr)?;
            if block[63] != 1 {
                return Ok(None);
            }
            if u64::from_le_bytes(block[..8].try_into().expect("8 bytes")) == key {
                return Ok(Some(block[8..8 + VALUE_LEN].to_vec()));
            }
        }
        Ok(None)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kv = KvStore::new(256);

    println!("inserting 100 records (each put = one durable store, no log, no fences)…");
    for k in 0..100u64 {
        let value = format!("value-for-key-{k}");
        kv.put(k, value.as_bytes())?;
    }
    // Overwrite a few — still single persists.
    for k in 0..10u64 {
        kv.put(k, format!("updated-{k}").as_bytes())?;
    }

    // Power fails mid-operation. The EPD battery drains the hierarchy
    // through the Horus vault.
    let drain = kv.sys.crash_and_drain(DrainScheme::HorusSlm);
    println!(
        "power failure: {} dirty blocks vaulted in {:.3} ms ({} writes, {} MACs)",
        drain.flushed_blocks,
        drain.seconds * 1e3,
        drain.writes,
        drain.mac_ops
    );

    // Reboot: verify + restore.
    let rec = kv.sys.recover()?;
    println!(
        "rebooted: {} blocks restored in {:.3} ms\n",
        rec.restored_blocks,
        rec.seconds * 1e3
    );

    // Every record survived, including the overwrites.
    for k in 0..100u64 {
        let got = kv.get(k)?.expect("record survived the crash");
        let expected = if k < 10 {
            format!("updated-{k}")
        } else {
            format!("value-for-key-{k}")
        };
        assert_eq!(&got[..expected.len()], expected.as_bytes(), "key {k}");
    }
    println!("all 100 records verified after crash + recovery.");
    println!("lookups of absent keys still work: {:?}", kv.get(999)?);
    Ok(())
}
