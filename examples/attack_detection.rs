//! Demonstrates the Horus threat model (paper §IV-A, §IV-C.4): an
//! attacker with full access to the NVM between the crash and the
//! recovery tampers with the vault — and every attack is detected.
//!
//! Run with: `cargo run --example attack_detection`

use horus::core::attack;
use horus::core::{DrainScheme, RecoveryError, SecureEpdSystem, SystemConfig};

/// Fills, crashes and drains a fresh system, returning it mid-outage
/// (vault written, power still out).
fn crashed_system() -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..64u64 {
        sys.write(i * 16448, [i as u8; 64]).expect("runtime write");
    }
    sys.crash_and_drain(DrainScheme::HorusSlm);
    sys
}

fn expect_detected(name: &str, sys: &mut SecureEpdSystem) {
    match sys.recover() {
        Err(RecoveryError::ChvIntegrity { position }) => {
            println!("  {name:<28} DETECTED (verification failed at entry {position})");
        }
        Err(other) => println!("  {name:<28} DETECTED ({other})"),
        Ok(_) => panic!("{name}: attack went UNDETECTED — this is a bug"),
    }
}

fn main() {
    println!("Horus vault under attack — every manipulation must fail recovery:\n");

    // 1. Flip a bit in a drained block's ciphertext.
    let mut sys = crashed_system();
    attack::tamper_data(&mut sys, 5);
    expect_detected("tamper data block", &mut sys);

    // 2. Redirect a block by editing its stored address.
    let mut sys = crashed_system();
    attack::tamper_address(&mut sys, 9);
    expect_detected("tamper stored address", &mut sys);

    // 3. Corrupt a stored MAC directly.
    let mut sys = crashed_system();
    attack::tamper_mac(&mut sys, 3);
    expect_detected("tamper stored MAC", &mut sys);

    // 4. Full splice: swap two entries including their addresses and
    //    MACs. Only the per-position drain counter catches this.
    let mut sys = crashed_system();
    attack::splice_entries(&mut sys, 2, 11);
    expect_detected("splice two entries", &mut sys);

    // 5. Replay: capture this episode's vault, let the system recover
    //    and crash again, then restore the stale vault.
    let mut sys = crashed_system();
    let snapshot = attack::snapshot_chv(&sys);
    sys.recover().expect("untampered vault recovers fine");
    for i in 0..64u64 {
        sys.write(i * 16448, [0xEE; 64]).expect("second run");
    }
    sys.crash_and_drain(DrainScheme::HorusSlm);
    attack::replay_chv(&mut sys, &snapshot);
    expect_detected("replay previous episode", &mut sys);

    // 6. Truncation: zero the tail of the episode (drop late updates).
    let mut sys = crashed_system();
    let n = sys.episode().expect("episode").blocks;
    attack::truncate_chv(&mut sys, n - 4);
    expect_detected("truncate the episode", &mut sys);

    // And the control: an untouched vault recovers.
    let mut sys = crashed_system();
    let rec = sys.recover().expect("clean vault verifies");
    println!(
        "\n  control (no attack): recovered {} blocks successfully",
        rec.restored_blocks
    );
}
